// Package explicit implements the concrete semantics of multithreaded
// MiniNesC programs: an explicit-state enumerative model checker for a
// fixed, finite number of threads over bounded nondeterminism, and a
// pseudo-random scheduler for dynamic analyses.
//
// It serves three roles in the reproduction: cross-validating CIRC's
// verdicts on small instances, providing the ModelCheck oracle of the
// Appendix A counter-refinement algorithm, and driving the Eraser-style
// lockset baseline.
package explicit

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/cfa"
	"circ/internal/expr"
)

// Options configures the enumeration.
type Options struct {
	// HavocDomain is the set of values a havoc assignment may take
	// (default {0, 1}). The concrete semantics is exact only up to this
	// bounded nondeterminism.
	HavocDomain []int64
	// MaxStates bounds the exploration (default 2,000,000).
	MaxStates int
	// ValueBound wraps every written value into the symmetric window
	// [-ValueBound/2, ValueBound/2) (default 8, i.e. [-4, 4)), keeping the
	// state space finite for counters like x = x + 1 while preserving
	// small negative values. The exploration is exact for programs whose
	// variables stay within the window and an approximation otherwise.
	ValueBound int64
}

func (o Options) havocDomain() []int64 {
	if len(o.HavocDomain) > 0 {
		return o.HavocDomain
	}
	return []int64{0, 1}
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 2000000
}

func (o Options) valueBound() int64 {
	if o.ValueBound > 0 {
		return o.ValueBound
	}
	return 8
}

func wrap(v, m int64) int64 {
	half := m / 2
	return ((v+half)%m+m)%m - half
}

// Config is a concrete program configuration: each thread's control
// location plus a valuation of all variables. Thread t's copy of local v
// is stored under "v@t".
type Config struct {
	Locs []cfa.Loc
	Vars map[string]int64
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Locs: append([]cfa.Loc(nil), c.Locs...), Vars: make(map[string]int64, len(c.Vars))}
	for k, v := range c.Vars {
		out.Vars[k] = v
	}
	return out
}

// Key returns a canonical key for deduplication.
func (c *Config) Key() string {
	var b strings.Builder
	for _, l := range c.Locs {
		fmt.Fprintf(&b, "%d,", l)
	}
	b.WriteByte('|')
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, c.Vars[n])
	}
	return b.String()
}

// Step is one executed transition.
type Step struct {
	Thread int
	Edge   *cfa.Edge
	// HavocValue is the value chosen for a havoc edge.
	HavocValue int64
}

// Instance is a multithreaded program instance: n threads each running a
// CFA (usually n copies of the same one).
type Instance struct {
	CFAs []*cfa.CFA
	// Init maps globals to initial values (default 0).
	Init map[string]int64
}

// NewSymmetric returns an instance of n copies of c.
func NewSymmetric(c *cfa.CFA, n int) *Instance {
	cs := make([]*cfa.CFA, n)
	for i := range cs {
		cs[i] = c
	}
	return &Instance{CFAs: cs}
}

// threadEnv exposes thread t's view: locals renamed v -> v@t.
func threadEnv(c *Config, t int, cf *cfa.CFA) map[string]int64 {
	env := make(map[string]int64, len(c.Vars))
	suffix := "@" + itoa(t)
	for k, v := range c.Vars {
		if i := strings.IndexByte(k, '@'); i >= 0 {
			if k[i:] == suffix {
				env[k[:i]] = v
			}
			continue
		}
		env[k] = v
	}
	return env
}

func localKey(v string, t int, cf *cfa.CFA) string {
	if cf.IsGlobal(v) {
		return v
	}
	return v + "@" + itoa(t)
}

// InitialConfig builds the initial configuration (all variables zero
// unless overridden by Init).
func (in *Instance) InitialConfig() *Config {
	c := &Config{Locs: make([]cfa.Loc, len(in.CFAs)), Vars: make(map[string]int64)}
	for t, cf := range in.CFAs {
		c.Locs[t] = cf.Entry
		for _, l := range cf.Locals {
			c.Vars[l+"@"+itoa(t)] = 0
		}
		for _, g := range cf.Globals {
			c.Vars[g] = 0
		}
	}
	for g, v := range in.Init {
		c.Vars[g] = v
	}
	return c
}

// EnabledThreads returns the threads allowed to run: if some thread is at
// an atomic location, only that thread.
func (in *Instance) EnabledThreads(c *Config) []int {
	for t, cf := range in.CFAs {
		if cf.IsAtomic(c.Locs[t]) {
			return []int{t}
		}
	}
	out := make([]int, len(in.CFAs))
	for i := range out {
		out[i] = i
	}
	return out
}

// Successors returns every successor configuration with the step taken.
// Written values wrap modulo bound.
func (in *Instance) Successors(c *Config, havocDomain []int64, bound int64) ([]*Config, []Step, error) {
	var outC []*Config
	var outS []Step
	for _, t := range in.EnabledThreads(c) {
		cf := in.CFAs[t]
		env := threadEnv(c, t, cf)
		for _, e := range cf.OutEdges(c.Locs[t]) {
			switch e.Op.Kind {
			case cfa.OpAssume:
				ok, err := expr.EvalFormula(e.Op.Pred, env)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
				n := c.Clone()
				n.Locs[t] = e.Dst
				outC = append(outC, n)
				outS = append(outS, Step{Thread: t, Edge: e})
			case cfa.OpAssign:
				v, err := expr.EvalTerm(e.Op.RHS, env)
				if err != nil {
					return nil, nil, err
				}
				n := c.Clone()
				n.Locs[t] = e.Dst
				n.Vars[localKey(e.Op.LHS, t, cf)] = wrap(v, bound)
				outC = append(outC, n)
				outS = append(outS, Step{Thread: t, Edge: e})
			case cfa.OpHavoc:
				for _, hv := range havocDomain {
					n := c.Clone()
					n.Locs[t] = e.Dst
					n.Vars[localKey(e.Op.LHS, t, cf)] = wrap(hv, bound)
					outC = append(outC, n)
					outS = append(outS, Step{Thread: t, Edge: e, HavocValue: hv})
				}
			}
		}
	}
	return outC, outS, nil
}

// IsRace reports whether configuration c has a data race on x: no thread
// at an atomic location and two distinct threads with enabled accesses of
// which at least one writes x.
func (in *Instance) IsRace(c *Config, x string) bool {
	for t, cf := range in.CFAs {
		if cf.IsAtomic(c.Locs[t]) {
			return false
		}
	}
	writers, accessors := 0, 0
	for t, cf := range in.CFAs {
		env := threadEnv(c, t, cf)
		w, r := false, false
		for _, e := range cf.OutEdges(c.Locs[t]) {
			switch e.Op.Kind {
			case cfa.OpAssign:
				if e.Op.LHS == x {
					w = true
				}
				if expr.Mentions(e.Op.RHS, x) {
					r = true
				}
			case cfa.OpHavoc:
				if e.Op.LHS == x {
					w = true
				}
			case cfa.OpAssume:
				if expr.Mentions(e.Op.Pred, x) {
					if ok, err := expr.EvalFormula(e.Op.Pred, env); err == nil && ok {
						r = true
					}
				}
			}
		}
		if w {
			writers++
			accessors++
		} else if r {
			accessors++
		}
	}
	return writers >= 1 && accessors >= 2
}

// Result reports the outcome of CheckRaces.
type Result struct {
	// Race is true when a racy configuration is reachable; Trace then
	// holds a shortest interleaving reaching it.
	Race      bool
	Trace     []Step
	NumStates int
}

// CheckRaces exhaustively explores the instance and reports whether a race
// on x is reachable.
func (in *Instance) CheckRaces(x string, opts Options) (*Result, error) {
	type parent struct {
		key  string
		step Step
	}
	init := in.InitialConfig()
	seen := map[string]parent{init.Key(): {}}
	queue := []*Config{init}
	n := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		n++
		if n > opts.maxStates() {
			return nil, fmt.Errorf("explicit: state budget exceeded (%d)", opts.maxStates())
		}
		if in.IsRace(c, x) {
			// Rebuild the trace.
			var rev []Step
			k := c.Key()
			for {
				p := seen[k]
				if p.key == "" && p.step.Edge == nil {
					break
				}
				rev = append(rev, p.step)
				k = p.key
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return &Result{Race: true, Trace: rev, NumStates: n}, nil
		}
		succs, steps, err := in.Successors(c, opts.havocDomain(), opts.valueBound())
		if err != nil {
			return nil, err
		}
		for i, s := range succs {
			k := s.Key()
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = parent{key: c.Key(), step: steps[i]}
			queue = append(queue, s)
		}
	}
	return &Result{NumStates: n}, nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
