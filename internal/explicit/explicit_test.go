package explicit

import (
	"testing"

	"circ/internal/cfa"
	"circ/internal/lang"
)

func buildCFA(t *testing.T, src string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

const testAndSetSrc = `
global int x;
global int state;
thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

const racySrc = `
global int x;
global int state;
thread Worker {
  local int old;
  while (1) {
    old = state;
    if (state == 0) { state = 1; }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func TestSafeProgramHasNoRace(t *testing.T) {
	c := buildCFA(t, testAndSetSrc)
	for _, n := range []int{1, 2, 3} {
		res, err := NewSymmetric(c, n).CheckRaces("x", Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Race {
			t.Fatalf("n=%d: spurious race:\n%v", n, res.Trace)
		}
	}
}

func TestRacyProgramHasRace(t *testing.T) {
	c := buildCFA(t, racySrc)
	res, err := NewSymmetric(c, 2).CheckRaces("x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Race {
		t.Fatalf("race not found with 2 threads")
	}
	if len(res.Trace) == 0 {
		t.Fatalf("race without trace")
	}
	// Replay the trace: it must be executable step by step.
	in := NewSymmetric(c, 2)
	cur := in.InitialConfig()
	for i, step := range res.Trace {
		succs, steps, err := in.Successors(cur, Options{}.havocDomain(), Options{}.valueBound())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for j, s := range steps {
			if s.Thread == step.Thread && s.Edge == step.Edge && s.HavocValue == step.HavocValue {
				cur = succs[j]
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trace step %d not executable: %+v", i, step)
		}
	}
	if !in.IsRace(cur, "x") {
		t.Fatalf("trace does not end in a race state")
	}
}

func TestSingleThreadNeverRaces(t *testing.T) {
	c := buildCFA(t, racySrc)
	res, err := NewSymmetric(c, 1).CheckRaces("x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Race {
		t.Fatalf("single thread cannot race")
	}
}

func TestAtomicMutualExclusion(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`)
	res, err := NewSymmetric(c, 3).CheckRaces("x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Race {
		t.Fatalf("atomic accesses raced")
	}
}

func TestEnabledThreadsAtomicPriority(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  atomic { x = 1; }
}
`)
	in := NewSymmetric(c, 2)
	cfg := in.InitialConfig()
	// Drive thread 1 into the atomic section.
	succs, steps, err := in.Successors(cfg, []int64{0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var inside *Config
	for i, s := range steps {
		if s.Thread == 1 && c.IsAtomic(succs[i].Locs[1]) {
			inside = succs[i]
			break
		}
	}
	if inside == nil {
		t.Fatalf("could not enter atomic")
	}
	enabled := in.EnabledThreads(inside)
	if len(enabled) != 1 || enabled[0] != 1 {
		t.Fatalf("enabled = %v, want only thread 1", enabled)
	}
}

func TestHavocDomainAndValueBound(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  g = *;
}
`)
	in := NewSymmetric(c, 1)
	cfg := in.InitialConfig()
	succs, _, err := in.Successors(cfg, []int64{0, 3, 9, -1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int64]bool{}
	for _, s := range succs {
		vals[s.Vars["g"]] = true
	}
	// Under the symmetric bound 8 (window [-4,4)): 9 wraps to 1, -1 stays.
	if !vals[0] || !vals[3] || !vals[1] || !vals[-1] {
		t.Fatalf("havoc values = %v", vals)
	}
}

func TestConfigKeyDeterministic(t *testing.T) {
	c := buildCFA(t, testAndSetSrc)
	in := NewSymmetric(c, 2)
	a := in.InitialConfig()
	b := in.InitialConfig()
	if a.Key() != b.Key() {
		t.Fatalf("initial keys differ")
	}
	bb := a.Clone()
	bb.Vars["x"] = 3
	if a.Key() == bb.Key() {
		t.Fatalf("different configs share a key")
	}
	if a.Vars["x"] != 0 {
		t.Fatalf("Clone aliased")
	}
}

func TestRandomRunObserves(t *testing.T) {
	c := buildCFA(t, testAndSetSrc)
	in := NewSymmetric(c, 2)
	count := 0
	err := in.RandomRun(1, 100, Options{}, func(cfg *Config, s Step) {
		count++
		if cfg == nil || s.Edge == nil {
			t.Fatalf("bad observation")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("observed %d steps, want 100", count)
	}
}

func TestRandomRunDeterministicPerSeed(t *testing.T) {
	c := buildCFA(t, testAndSetSrc)
	record := func(seed int64) []string {
		in := NewSymmetric(c, 2)
		var out []string
		if err := in.RandomRun(seed, 50, Options{}, func(_ *Config, s Step) {
			out = append(out, s.Edge.String())
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := record(7), record(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestStateBudgetError(t *testing.T) {
	c := buildCFA(t, racySrc)
	_, err := NewSymmetric(c, 2).CheckRaces("x", Options{MaxStates: 1})
	if err == nil {
		t.Fatalf("expected budget error")
	}
}

func TestInitOverride(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  assume(g == 7);
  g = 0;
}
`)
	in := NewSymmetric(c, 1)
	in.Init = map[string]int64{"g": 7}
	cfg := in.InitialConfig()
	if cfg.Vars["g"] != 7 {
		t.Fatalf("init override ignored")
	}
}
