package dataflow

import (
	"fmt"

	"circ/internal/cfa"
	"circ/internal/expr"
)

// SliceStats quantifies one cone-of-influence slice.
type SliceStats struct {
	// LocsBefore/LocsAfter and EdgesBefore/EdgesAfter measure the CFA
	// before and after slicing (including the skip-chain contraction).
	LocsBefore, LocsAfter   int
	EdgesBefore, EdgesAfter int
	// AssignsSkipped counts assignments/havocs to irrelevant variables
	// rewritten to skips; AssumesWeakened counts assume predicates over
	// irrelevant variables weakened to true.
	AssignsSkipped, AssumesWeakened int
	// RelevantVars is the size of the computed relevance closure.
	RelevantVars int
}

// Changed reports whether the slice differs from the input CFA.
func (s SliceStats) Changed() bool {
	return s.LocsAfter != s.LocsBefore || s.EdgesAfter != s.EdgesBefore ||
		s.AssignsSkipped > 0 || s.AssumesWeakened > 0
}

// Slice computes the cone of influence of global g in thread template c
// and returns a new CFA with everything outside it erased: assignments
// and havocs to irrelevant variables become skips, assume predicates
// mentioning only irrelevant variables are weakened to true, and the
// resulting skip chains are contracted away. The input CFA is not
// modified.
//
// The result is a sound over-approximation specialised to races on g:
// every behaviour of c projected onto the relevant variables is a
// behaviour of the slice, every access to g is preserved verbatim (on an
// edge with the same source-location atomicity), and weakening assumes
// only adds behaviours. A safety proof on the slice therefore implies
// safety of the original, and because the relevance closure keeps every
// predicate that can influence control flow around the accesses to g
// (see relevantVars), genuine races are not masked either.
func Slice(c *cfa.CFA, g string) (*cfa.CFA, SliceStats) {
	stats := SliceStats{LocsBefore: c.NumLocs(), EdgesBefore: len(c.Edges)}
	reach := c.ReachableLocs()
	rel := relevantVars(c, g, reach)
	stats.RelevantVars = len(rel)

	// Rewrite reachable edges; unreachable ones are dropped outright.
	skip := cfa.Op{Kind: cfa.OpAssume, Pred: expr.TrueExpr}
	rewritten := make([]*cfa.Edge, 0, len(c.Edges))
	for _, e := range c.Edges {
		if !reach[e.Src] {
			continue
		}
		op := e.Op
		switch op.Kind {
		case cfa.OpAssign, cfa.OpHavoc:
			if !rel[op.LHS] {
				op = skip
				stats.AssignsSkipped++
			}
		case cfa.OpAssume:
			vars := e.Reads()
			if len(vars) > 0 && !intersects(vars, rel) {
				op = skip
				stats.AssumesWeakened++
			}
		}
		rewritten = append(rewritten, &cfa.Edge{Src: e.Src, Dst: e.Dst, Op: op, Pos: e.Pos})
	}

	out := contract(c, reach, rewritten)
	stats.LocsAfter = out.NumLocs()
	stats.EdgesAfter = len(out.Edges)
	return out, stats
}

// relevantVars computes the relevance closure R for races on g: the
// least set of variables satisfying
//
//  1. g is in R;
//  2. every variable of an edge that accesses g — including the written
//     variable — is in R, so accesses to g keep their exact operations;
//  3. the variables of every branch predicate (an assume out of a
//     location with two or more out-edges) are in R: branch guards
//     decide which accesses are reachable, and weakening one could mask
//     a genuine race or break a synchronisation protocol;
//  4. if an assume predicate mentions any variable of R it contributes
//     all of its variables, so retained guards never mention variables
//     whose definitions were sliced away;
//  5. if an assignment writes a variable of R its right-hand side's
//     variables are in R (data dependence).
//
// Only reachable edges contribute. The closure is computed by iterating
// rules 4 and 5 to a fixpoint over rules 1-3's seed.
func relevantVars(c *cfa.CFA, g string, reach []bool) map[string]bool {
	rel := map[string]bool{g: true}
	opVars := func(e *cfa.Edge) map[string]bool {
		vars := make(map[string]bool, len(e.Reads())+1)
		for v := range e.Reads() {
			vars[v] = true
		}
		if w := e.Writes(); w != "" {
			vars[w] = true
		}
		return vars
	}
	// Seed: rules 2 and 3.
	for _, e := range c.Edges {
		if !reach[e.Src] {
			continue
		}
		if e.Writes() == g || e.Reads()[g] {
			for v := range opVars(e) {
				rel[v] = true
			}
		}
		if e.Op.Kind == cfa.OpAssume && len(c.OutEdges(e.Src)) >= 2 {
			for v := range e.Reads() {
				rel[v] = true
			}
		}
	}
	// Fixpoint: rules 4 and 5.
	for changed := true; changed; {
		changed = false
		for _, e := range c.Edges {
			if !reach[e.Src] {
				continue
			}
			switch e.Op.Kind {
			case cfa.OpAssign:
				if !rel[e.Op.LHS] {
					continue
				}
				for v := range e.Reads() {
					if !rel[v] {
						rel[v] = true
						changed = true
					}
				}
			case cfa.OpAssume:
				vars := e.Reads()
				if !intersects(vars, rel) {
					continue
				}
				for v := range vars {
					if !rel[v] {
						rel[v] = true
						changed = true
					}
				}
			}
		}
	}
	return rel
}

func intersects(a, b map[string]bool) bool {
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}

// contract collapses skip chains: a non-entry location whose only
// outgoing edge is a skip to a different location with the same
// atomicity is identified with that target. A location reached this way
// only stutters — its single transition is always enabled, accesses
// nothing, and changes no state — so identifying the two preserves weak
// bisimilarity and, because the atomicity flags agree, the race
// semantics. Skip self-loops produced by the identification are dropped.
func contract(c *cfa.CFA, reach []bool, edges []*cfa.Edge) *cfa.CFA {
	n := c.NumLocs()
	rep := make([]cfa.Loc, n)
	for i := range rep {
		rep[i] = cfa.Loc(i)
	}
	var find func(l cfa.Loc) cfa.Loc
	find = func(l cfa.Loc) cfa.Loc {
		for rep[l] != l {
			rep[l] = rep[rep[l]] // path halving
			l = rep[l]
		}
		return l
	}

	// own[u] lists u's own outgoing edges; the merge rule only ever
	// inspects a location's own behaviour, so later merges into u cannot
	// invalidate a decision already made about u.
	own := make([][]*cfa.Edge, n)
	for _, e := range edges {
		own[e.Src] = append(own[e.Src], e)
	}
	for changed := true; changed; {
		changed = false
		for u := cfa.Loc(0); int(u) < n; u++ {
			if !reach[u] || u == c.Entry || find(u) != u || len(own[u]) != 1 {
				continue
			}
			e := own[u][0]
			if !isSkip(e.Op) {
				continue
			}
			d := find(e.Dst)
			if d == u || c.Atomic[u] != c.Atomic[e.Dst] {
				continue
			}
			rep[u] = d
			changed = true
		}
	}

	// Renumber the surviving locations in original order and map edges,
	// dropping skip self-loops (pure stutter) and exact duplicates.
	newIdx := make([]cfa.Loc, n)
	var atomic []bool
	for l := 0; l < n; l++ {
		if reach[l] && find(cfa.Loc(l)) == cfa.Loc(l) {
			newIdx[l] = cfa.Loc(len(atomic))
			atomic = append(atomic, c.Atomic[l])
		}
	}
	seen := make(map[string]bool, len(edges))
	var out []*cfa.Edge
	for _, e := range edges {
		src, dst := find(e.Src), find(e.Dst)
		if src == dst && isSkip(e.Op) {
			continue
		}
		key := edgeKey(newIdx[src], newIdx[dst], e.Op)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, &cfa.Edge{Src: newIdx[src], Dst: newIdx[dst], Op: e.Op, Pos: e.Pos})
	}

	// Keep only the locals the slice still mentions (in declaration
	// order); dropping the rest shrinks every abstract state.
	var locals []string
	used := usedVars(out)
	for _, v := range c.Locals {
		if used[v] {
			locals = append(locals, v)
		}
	}
	return cfa.New(c.Name, c.Globals, locals, newIdx[find(c.Entry)], atomic, out)
}

func isSkip(op cfa.Op) bool {
	if op.Kind != cfa.OpAssume {
		return false
	}
	b, ok := op.Pred.(expr.Bool)
	return ok && b.Value
}

func edgeKey(src, dst cfa.Loc, op cfa.Op) string {
	return fmt.Sprintf("%d|%d|%s", src, dst, op)
}

func usedVars(edges []*cfa.Edge) map[string]bool {
	used := make(map[string]bool)
	for _, e := range edges {
		for v := range e.Op.ReadVars() {
			used[v] = true
		}
		if w := e.Op.WritesVar(); w != "" {
			used[w] = true
		}
	}
	return used
}
