package dataflow

import (
	"testing"

	"circ/internal/cfa"
)

// sliceSrc has a synchronisation protocol on x (relevant) plus a counter
// and a second global that do not influence x at all.
const sliceSrc = `
global int x;
global int junk;

thread T {
  local int old;
  local int i;
  while (1) {
    i = i + 1;
    junk = junk + i;
    atomic {
      old = x;
      if (x == 0) { x = 1; }
    }
    if (old == 0) { x = 0; }
  }
}
`

func TestSliceRemovesIrrelevantCone(t *testing.T) {
	c := mustBuild(t, sliceSrc, "")
	s, stats := Slice(c, "x")
	if stats.AssignsSkipped < 2 {
		t.Errorf("AssignsSkipped = %d, want >= 2 (i and junk updates)", stats.AssignsSkipped)
	}
	if stats.LocsAfter >= stats.LocsBefore {
		t.Errorf("no contraction: locs %d -> %d", stats.LocsBefore, stats.LocsAfter)
	}
	if stats.EdgesAfter >= stats.EdgesBefore {
		t.Errorf("no edge reduction: edges %d -> %d", stats.EdgesBefore, stats.EdgesAfter)
	}
	if !stats.Changed() {
		t.Error("stats.Changed() = false after a real slice")
	}
	// Nothing in the slice may mention the irrelevant variables.
	for _, e := range s.Edges {
		if e.Reads()["junk"] || e.Reads()["i"] || e.Writes() == "junk" || e.Writes() == "i" {
			t.Errorf("sliced edge still mentions an irrelevant variable: %s", e)
		}
	}
	for _, l := range s.Locals {
		if l == "i" {
			t.Error("local i survived the slice")
		}
	}
	// The protocol on old/x must survive intact: accesses to x keep their
	// count and atomicity.
	if got, want := countAccesses(s, "x"), countAccesses(c, "x"); got != want {
		t.Errorf("accesses to x: %d after slice, %d before", got, want)
	}
	if !mentions(s, "old") {
		t.Error("slice dropped the guard variable old (control dependence)")
	}
}

// countAccesses counts (edge, atomicity) access pairs to g.
func countAccesses(c *cfa.CFA, g string) (n int) {
	for _, e := range c.Edges {
		if e.Writes() == g || e.Reads()[g] {
			n++
			if c.IsAtomic(e.Src) {
				n += 1 << 16 // fold atomicity into the count
			}
		}
	}
	return n
}

func mentions(c *cfa.CFA, v string) bool {
	for _, e := range c.Edges {
		if e.Reads()[v] || e.Writes() == v {
			return true
		}
	}
	return false
}

func TestSliceOnTargetAloneIsStillSound(t *testing.T) {
	// Slicing for junk: the x protocol is control-relevant (branch
	// predicates [x==0] and [old==0]), so it must be retained even though
	// junk's own cone is tiny.
	c := mustBuild(t, sliceSrc, "")
	s, _ := Slice(c, "junk")
	if !mentions(s, "x") || !mentions(s, "old") {
		t.Error("branch predicates over x/old were sliced away; control dependence lost")
	}
	if !mentions(s, "junk") || !mentions(s, "i") {
		t.Error("junk's own data cone (junk, i) missing from the slice")
	}
}

func TestSliceDeterministic(t *testing.T) {
	c := mustBuild(t, sliceSrc, "")
	a, sa := Slice(c, "x")
	b, sb := Slice(c, "x")
	if a.Dot() != b.Dot() || sa != sb {
		t.Fatal("Slice is not deterministic")
	}
	// And it must not touch its input: rebuilding gives the same CFA.
	again := mustBuild(t, sliceSrc, "")
	if c.Dot() != again.Dot() {
		t.Fatal("Slice mutated its input CFA")
	}
}

func TestSliceContractsSkipChains(t *testing.T) {
	// Even with nothing irrelevant, builder-inserted skip chains (loop
	// back-edges, join points) contract away.
	c := mustBuild(t, sliceSrc, "")
	s, stats := Slice(c, "x")
	if s.NumLocs() != stats.LocsAfter || len(s.Edges) != stats.EdgesAfter {
		t.Fatalf("stats disagree with the CFA: locs %d vs %d, edges %d vs %d",
			s.NumLocs(), stats.LocsAfter, len(s.Edges), stats.EdgesAfter)
	}
	// No non-entry location may retain a lone skip out-edge to a
	// same-atomicity target: contract() reached a fixpoint.
	for l := cfa.Loc(0); int(l) < s.NumLocs(); l++ {
		if l == s.Entry {
			continue
		}
		out := s.OutEdges(l)
		if len(out) == 1 && isSkip(out[0].Op) && out[0].Dst != l && s.IsAtomic(l) == s.IsAtomic(out[0].Dst) {
			t.Errorf("location %d still has a contractible skip to %d", l, out[0].Dst)
		}
	}
}

func TestSliceEntryPreserved(t *testing.T) {
	c := mustBuild(t, sliceSrc, "")
	s, _ := Slice(c, "x")
	if int(s.Entry) < 0 || int(s.Entry) >= s.NumLocs() {
		t.Fatalf("sliced entry %d out of range [0,%d)", s.Entry, s.NumLocs())
	}
	if len(s.OutEdges(s.Entry)) == 0 {
		t.Fatal("sliced entry has no outgoing edges")
	}
}
