package dataflow

import (
	"fmt"

	"circ/internal/cfa"
)

// Discharge reasons, as they appear in verdict provenance
// ("triage: read-only") and telemetry counter names.
const (
	// ReasonThreadLocal: no reachable edge of the thread template accesses
	// the global at all, so no copy of the thread can participate in a
	// race on it.
	ReasonThreadLocal = "thread-local"
	// ReasonReadOnly: the thread never writes the global. A race requires
	// at least one write, and in the symmetric-thread model every
	// potential writer runs this same template.
	ReasonReadOnly = "read-only"
	// ReasonAtomicCovered: every reachable access to the global sits on
	// an edge whose source location is atomic. An accessing thread
	// therefore occupies an atomic location, and the race definition
	// excludes states with any occupied atomic location.
	ReasonAtomicCovered = "atomic-covered"
	// ReasonFlagGuarded: every uncovered access to the global sits in a
	// region the flag-guard must-analysis proves is held under a
	// single-owner busy flag (acquired by an atomic test-and-set,
	// released only by its owner), so two template copies cannot
	// co-occupy the accessing locations. See flagguard.go.
	ReasonFlagGuarded = "flag-guarded"
)

// Discharge is a statically proved race-freedom verdict for one
// (thread, global) pair.
type Discharge struct {
	// Reason is one of the Reason* constants.
	Reason string
	// Detail is a one-line human rendering of the evidence.
	Detail string
}

// CounterKey renders the reason as a telemetry counter suffix
// ("read-only" -> "read_only").
func CounterKey(reason string) string {
	out := make([]byte, len(reason))
	for i := 0; i < len(reason); i++ {
		if reason[i] == '-' {
			out[i] = '_'
		} else {
			out[i] = reason[i]
		}
	}
	return string(out)
}

// Triage attempts to discharge the race question for global g on thread
// template c without running the inference engine. Each rule is a sound
// under the engine's race definition (see the Reason* constants): a
// discharge means no reachable state of "unboundedly many copies of c"
// is a race state on g. Unreachable code (locations with no path from
// the entry) is ignored — accesses there cannot occur.
func Triage(c *cfa.CFA, g string) (Discharge, bool) {
	reach := c.ReachableLocs()
	var reads, writes, uncovered int
	for _, e := range c.Edges {
		if !reach[e.Src] {
			continue
		}
		w := e.Writes() == g
		r := e.Reads()[g]
		if !w && !r {
			continue
		}
		if w {
			writes++
		}
		if r {
			reads++
		}
		if !c.IsAtomic(e.Src) {
			uncovered++
		}
	}
	switch {
	case reads == 0 && writes == 0:
		return Discharge{
			Reason: ReasonThreadLocal,
			Detail: fmt.Sprintf("no reachable edge of %s accesses %s", c.Name, g),
		}, true
	case writes == 0:
		return Discharge{
			Reason: ReasonReadOnly,
			Detail: fmt.Sprintf("%s reads %s on %d edge(s) but never writes it", c.Name, g, reads),
		}, true
	case uncovered == 0:
		return Discharge{
			Reason: ReasonAtomicCovered,
			Detail: fmt.Sprintf("all %d access(es) to %s leave atomic locations", reads+writes, g),
		}, true
	}
	// The syntactic rules failed: some uncovered write exists. Run the
	// flag-guard must-analysis before conceding the pair to the
	// inference engine.
	return FlagGuard(c).Discharge(g)
}
