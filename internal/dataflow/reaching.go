package dataflow

import "circ/internal/cfa"

// DefSite is one definition: the index (into c.Edges) of an edge that
// writes Var via an assignment or havoc.
type DefSite struct {
	EdgeIndex int
	Var       string
}

// ReachingResult is the reaching-definitions solution for one CFA.
type ReachingResult struct {
	// Defs enumerates the definition sites, in edge order. Bit i of a
	// fact corresponds to Defs[i].
	Defs []DefSite
	// In[l] is the set of definitions reaching location l: definition d
	// is in In[l] when some path from the entry to l runs through d's
	// edge with no later write to d's variable.
	In []BitSet
}

// reachingProblem instantiates the framework: facts are definition sets,
// an edge writing x kills every other definition of x and generates its
// own.
type reachingProblem struct {
	nDefs int
	defOf map[*cfa.Edge]int // edge -> its definition index, if it writes
	byVar map[string]BitSet // var -> all definitions of it (the kill set)
}

func (p *reachingProblem) Direction() Direction { return Forward }
func (p *reachingProblem) Bottom() BitSet       { return NewBitSet(p.nDefs) }
func (p *reachingProblem) Boundary() BitSet     { return NewBitSet(p.nDefs) }

func (p *reachingProblem) Join(dst, src BitSet) (BitSet, bool) {
	return dst, dst.UnionInto(src)
}

func (p *reachingProblem) Transfer(e *cfa.Edge, in BitSet) BitSet {
	x := e.Writes()
	if x == "" {
		return in
	}
	out := in.Copy()
	out.AndNot(p.byVar[x])
	if d, ok := p.defOf[e]; ok {
		out.Set(d)
	}
	return out
}

// ReachingDefinitions computes which writes can reach each location.
// Variables are unconstrained at the entry (the engine's semantics leave
// every variable initially arbitrary), so an empty fact at l means "no
// write in this thread reaches l", not "the variable is undefined".
func ReachingDefinitions(c *cfa.CFA) *ReachingResult {
	p := &reachingProblem{
		defOf: make(map[*cfa.Edge]int),
		byVar: make(map[string]BitSet),
	}
	var defs []DefSite
	for i, e := range c.Edges {
		if x := e.Writes(); x != "" {
			p.defOf[e] = len(defs)
			defs = append(defs, DefSite{EdgeIndex: i, Var: x})
		}
	}
	p.nDefs = len(defs)
	for d, site := range defs {
		set, ok := p.byVar[site.Var]
		if !ok {
			set = NewBitSet(len(defs))
			p.byVar[site.Var] = set
		}
		set.Set(d)
	}
	return &ReachingResult{Defs: defs, In: Solve[BitSet](c, p)}
}

// DefsOf returns the definition sites of v reaching location l, as
// indices into r.Defs.
func (r *ReachingResult) DefsOf(l cfa.Loc, v string) []int {
	var out []int
	for _, d := range r.In[l].Elems() {
		if r.Defs[d].Var == v {
			out = append(out, d)
		}
	}
	return out
}
