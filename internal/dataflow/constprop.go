package dataflow

import (
	"circ/internal/cfa"
	"circ/internal/expr"
)

// valKind classifies one variable's abstract value in the flat
// constant/copy lattice.
type valKind int

const (
	// valNAC ("not a constant") is the lattice top: the variable may hold
	// any value. It is also the entry fact for every variable — the
	// engine's semantics leave initial values unconstrained.
	valNAC valKind = iota
	// valConst is a known integer constant.
	valConst
	// valCopy means "same value as variable Src" (copy propagation).
	valCopy
	// valNe means "provably not equal to N" — established by passing a
	// negated guard (assume [!(x==c)] / assume [x != c]). It sits between
	// valConst and valNAC: Const(a) with a != c is a refinement of Ne(c).
	valNe
)

// Value is one variable's abstract value.
type Value struct {
	Kind valKind
	N    int64  // valConst, valNe
	Src  string // valCopy
}

func (v Value) eq(w Value) bool { return v.Kind == w.Kind && v.N == w.N && v.Src == w.Src }

// IsConst reports whether the value is a known constant, and which.
func (v Value) IsConst() (int64, bool) { return v.N, v.Kind == valConst }

// ConstFact maps every variable to its abstract value at a location. A
// nil Vals slice is the lattice bottom: the location is unreached.
type ConstFact struct {
	Vals []Value
}

func (f ConstFact) reached() bool { return f.Vals != nil }

// ConstResult is the constant/copy-propagation solution for one CFA.
type ConstResult struct {
	// Vars enumerates the CFA's variables; index i of a fact corresponds
	// to Vars[i].
	Vars []string
	// In[l] is the fact on entry to l. A nil fact marks l statically
	// unreachable.
	In []ConstFact

	idx map[string]int
}

// ConstAt returns the constant value of v on entry to l, if the analysis
// proved one.
func (r *ConstResult) ConstAt(l cfa.Loc, v string) (int64, bool) {
	i, ok := r.idx[v]
	if !ok || !r.In[l].reached() {
		return 0, false
	}
	return r.In[l].Vals[i].IsConst()
}

// Reached reports whether the analysis found any path from the entry
// to l.
func (r *ConstResult) Reached(l cfa.Loc) bool { return r.In[l].reached() }

type constProblem struct {
	vars *varIndex
}

func (p *constProblem) Direction() Direction { return Forward }
func (p *constProblem) Bottom() ConstFact    { return ConstFact{} }

// Boundary: every variable starts NAC — globals are written by the
// environment and the semantics constrain no initial value.
func (p *constProblem) Boundary() ConstFact {
	return ConstFact{Vals: make([]Value, len(p.vars.names))}
}

func (p *constProblem) Join(dst, src ConstFact) (ConstFact, bool) {
	if !src.reached() {
		return dst, false
	}
	if !dst.reached() {
		out := ConstFact{Vals: make([]Value, len(src.Vals))}
		copy(out.Vals, src.Vals)
		return out, true
	}
	changed := false
	for i := range dst.Vals {
		j := joinVal(dst.Vals[i], src.Vals[i])
		if !j.eq(dst.Vals[i]) {
			dst.Vals[i] = j
			changed = true
		}
	}
	return dst, changed
}

// joinVal is the least upper bound in the flat lattice extended with Ne:
// Const(a) ⊑ Ne(c) whenever a != c, so joining the two keeps the
// disequality instead of dropping straight to NAC.
func joinVal(a, b Value) Value {
	if a.eq(b) {
		return a
	}
	if a.Kind == valConst && b.Kind == valNe && a.N != b.N {
		return b
	}
	if b.Kind == valConst && a.Kind == valNe && b.N != a.N {
		return a
	}
	return Value{Kind: valNAC}
}

func (p *constProblem) Transfer(e *cfa.Edge, in ConstFact) ConstFact {
	if !in.reached() {
		return in
	}
	out := ConstFact{Vals: make([]Value, len(in.Vals))}
	copy(out.Vals, in.Vals)
	switch e.Op.Kind {
	case cfa.OpAssign:
		p.assign(out.Vals, e.Op.LHS, p.eval(e.Op.RHS, in.Vals))
	case cfa.OpHavoc:
		p.assign(out.Vals, e.Op.LHS, Value{Kind: valNAC})
	case cfa.OpAssume:
		switch p.evalPred(e.Op.Pred, in.Vals) {
		case predFalse:
			return ConstFact{} // the guard cannot pass: successor unreached
		default:
			p.refine(e.Op.Pred, out.Vals)
		}
	}
	return out
}

// assign writes v into x and invalidates every copy whose source was x —
// "y = x" stops meaning anything once x changes.
func (p *constProblem) assign(vals []Value, x string, v Value) {
	i, ok := p.vars.idx[x]
	if !ok {
		return
	}
	for j := range vals {
		if vals[j].Kind == valCopy && vals[j].Src == x {
			vals[j] = Value{Kind: valNAC}
		}
	}
	vals[i] = v
}

// eval abstracts an arithmetic expression over the current fact.
func (p *constProblem) eval(e expr.Expr, vals []Value) Value {
	switch e := e.(type) {
	case expr.Int:
		return Value{Kind: valConst, N: e.Value}
	case expr.Var:
		i, ok := p.vars.idx[e.Name]
		if !ok {
			return Value{Kind: valNAC}
		}
		switch v := vals[i]; v.Kind {
		case valConst:
			return v
		case valCopy:
			// Chains are collapsed at assignment time, so a copy's source
			// is never itself a copy; propagate it as the copy value.
			return v
		default:
			return Value{Kind: valCopy, Src: e.Name}
		}
	case expr.Bin:
		x, y := p.eval(e.X, vals), p.eval(e.Y, vals)
		a, aok := x.IsConst()
		b, bok := y.IsConst()
		if !aok || !bok {
			return Value{Kind: valNAC}
		}
		switch e.Op {
		case expr.OpAdd:
			return Value{Kind: valConst, N: a + b}
		case expr.OpSub:
			return Value{Kind: valConst, N: a - b}
		case expr.OpMul:
			return Value{Kind: valConst, N: a * b}
		}
	}
	return Value{Kind: valNAC}
}

// evalStore abstracts an assignment's right-hand side for the
// interference-aware flag-guard analysis. Unlike eval, a bare variable
// always becomes a copy, even when its current value is a known
// constant: storing the resolved constant would make the transfer
// non-monotone — the same edge would emit incomparable Const/Copy
// outputs as its input fact weakens across fixpoint iterations, and the
// destination would join them to NAC, severing the copy link that
// witness resolution and pin propagation depend on. Queries recover the
// constant by resolving the copy link instead.
func (p *constProblem) evalStore(e expr.Expr, vals []Value) Value {
	if v, ok := e.(expr.Var); ok {
		i, ok := p.vars.idx[v.Name]
		if !ok {
			return Value{Kind: valNAC}
		}
		if w := vals[i]; w.Kind == valCopy {
			return w // collapse chains: a copy of a copy copies the root
		}
		return Value{Kind: valCopy, Src: v.Name}
	}
	return p.eval(e, vals)
}

type predVal int

const (
	predUnknown predVal = iota
	predTrue
	predFalse
)

// evalPred abstracts a boolean predicate over the current fact.
func (p *constProblem) evalPred(e expr.Expr, vals []Value) predVal {
	switch e := e.(type) {
	case expr.Bool:
		if e.Value {
			return predTrue
		}
		return predFalse
	case expr.Cmp:
		x, y := p.abs(e.X, vals), p.abs(e.Y, vals)
		a, aok := x.IsConst()
		b, bok := y.IsConst()
		if !aok || !bok {
			// A known constant against a "!= c" fact still decides pure
			// (dis)equality when the constant is exactly c.
			if ne, c, ok := neAgainstConst(x, y); ok && ne.N == c {
				switch e.Op {
				case expr.OpEq:
					return predFalse
				case expr.OpNe:
					return predTrue
				}
			}
			return predUnknown
		}
		var holds bool
		switch e.Op {
		case expr.OpEq:
			holds = a == b
		case expr.OpNe:
			holds = a != b
		case expr.OpLt:
			holds = a < b
		case expr.OpLe:
			holds = a <= b
		case expr.OpGt:
			holds = a > b
		case expr.OpGe:
			holds = a >= b
		default:
			return predUnknown
		}
		if holds {
			return predTrue
		}
		return predFalse
	case expr.Not:
		switch p.evalPred(e.X, vals) {
		case predTrue:
			return predFalse
		case predFalse:
			return predTrue
		}
	case expr.And:
		all := predTrue
		for _, c := range e.Xs {
			switch p.evalPred(c, vals) {
			case predFalse:
				return predFalse
			case predUnknown:
				all = predUnknown
			}
		}
		return all
	case expr.Or:
		any := predFalse
		for _, c := range e.Xs {
			switch p.evalPred(c, vals) {
			case predTrue:
				return predTrue
			case predUnknown:
				any = predUnknown
			}
		}
		return any
	}
	return predUnknown
}

// abs resolves an expression to its abstract value, additionally looking
// through one copy link so Const/Ne facts on a copied-from variable apply
// to the copy.
func (p *constProblem) abs(e expr.Expr, vals []Value) Value {
	v := p.eval(e, vals)
	if v.Kind == valCopy {
		if i, ok := p.vars.idx[v.Src]; ok {
			switch w := vals[i]; w.Kind {
			case valConst, valNe:
				return w
			}
		}
	}
	return v
}

// neAgainstConst extracts (Ne value, constant) when exactly that pairing
// is present, in either order.
func neAgainstConst(x, y Value) (Value, int64, bool) {
	if x.Kind == valNe && y.Kind == valConst {
		return x, y.N, true
	}
	if y.Kind == valNe && x.Kind == valConst {
		return y, x.N, true
	}
	return Value{}, 0, false
}

// refine sharpens the fact through an assume edge: passing [x == c] pins
// x to c on the far side, passing a negated guard [x != c] (or
// [!(x == c)]) pins x to "not c".
func (p *constProblem) refine(pred expr.Expr, vals []Value) {
	switch e := pred.(type) {
	case expr.Cmp:
		switch e.Op {
		case expr.OpEq:
			if v, ok := e.X.(expr.Var); ok {
				if c, ok := p.eval(e.Y, vals).IsConst(); ok {
					p.pin(vals, v.Name, Value{Kind: valConst, N: c})
				}
			}
			if v, ok := e.Y.(expr.Var); ok {
				if c, ok := p.eval(e.X, vals).IsConst(); ok {
					p.pin(vals, v.Name, Value{Kind: valConst, N: c})
				}
			}
		case expr.OpNe:
			if v, ok := e.X.(expr.Var); ok {
				if c, ok := p.eval(e.Y, vals).IsConst(); ok {
					p.pin(vals, v.Name, Value{Kind: valNe, N: c})
				}
			}
			if v, ok := e.Y.(expr.Var); ok {
				if c, ok := p.eval(e.X, vals).IsConst(); ok {
					p.pin(vals, v.Name, Value{Kind: valNe, N: c})
				}
			}
		}
	case expr.Not:
		p.refine(expr.Negate(e.X), vals)
	case expr.And:
		for _, c := range e.Xs {
			p.refine(c, vals)
		}
	}
}

// pin records a Const/Ne fact for x and propagates it across the copy
// relation: "old == x" together with "x == c" gives "old == c", so the
// fact applies to x, to x's copy source, and to every live copy of
// either. Copies are established by plain assignment and invalidated on
// writes, so every propagation target provably equals x here.
func (p *constProblem) pin(vals []Value, x string, v Value) {
	i, ok := p.vars.idx[x]
	if !ok {
		return
	}
	src := ""
	if vals[i].Kind == valCopy {
		src = vals[i].Src
	}
	for j := range vals {
		if vals[j].Kind == valCopy && (vals[j].Src == x || (src != "" && vals[j].Src == src)) {
			vals[j] = v
		}
	}
	vals[i] = v
	if src != "" {
		if k, ok := p.vars.idx[src]; ok {
			vals[k] = v
		}
	}
}

// ConstantPropagation computes, per location, which variables are pinned
// to known constants (or are exact copies of other variables) on every
// path from the entry. The entry fact is all-NAC: the checker's
// semantics give variables arbitrary initial values.
func ConstantPropagation(c *cfa.CFA) *ConstResult {
	vars := indexVars(c)
	p := &constProblem{vars: vars}
	return &ConstResult{Vars: vars.names, In: Solve[ConstFact](c, p), idx: vars.idx}
}
