package dataflow

import (
	"circ/internal/cfa"
	"circ/internal/expr"
)

// valKind classifies one variable's abstract value in the flat
// constant/copy lattice.
type valKind int

const (
	// valNAC ("not a constant") is the lattice top: the variable may hold
	// any value. It is also the entry fact for every variable — the
	// engine's semantics leave initial values unconstrained.
	valNAC valKind = iota
	// valConst is a known integer constant.
	valConst
	// valCopy means "same value as variable Src" (copy propagation).
	valCopy
)

// Value is one variable's abstract value.
type Value struct {
	Kind valKind
	N    int64  // valConst
	Src  string // valCopy
}

func (v Value) eq(w Value) bool { return v.Kind == w.Kind && v.N == w.N && v.Src == w.Src }

// IsConst reports whether the value is a known constant, and which.
func (v Value) IsConst() (int64, bool) { return v.N, v.Kind == valConst }

// ConstFact maps every variable to its abstract value at a location. A
// nil Vals slice is the lattice bottom: the location is unreached.
type ConstFact struct {
	Vals []Value
}

func (f ConstFact) reached() bool { return f.Vals != nil }

// ConstResult is the constant/copy-propagation solution for one CFA.
type ConstResult struct {
	// Vars enumerates the CFA's variables; index i of a fact corresponds
	// to Vars[i].
	Vars []string
	// In[l] is the fact on entry to l. A nil fact marks l statically
	// unreachable.
	In []ConstFact

	idx map[string]int
}

// ConstAt returns the constant value of v on entry to l, if the analysis
// proved one.
func (r *ConstResult) ConstAt(l cfa.Loc, v string) (int64, bool) {
	i, ok := r.idx[v]
	if !ok || !r.In[l].reached() {
		return 0, false
	}
	return r.In[l].Vals[i].IsConst()
}

// Reached reports whether the analysis found any path from the entry
// to l.
func (r *ConstResult) Reached(l cfa.Loc) bool { return r.In[l].reached() }

type constProblem struct {
	vars *varIndex
}

func (p *constProblem) Direction() Direction { return Forward }
func (p *constProblem) Bottom() ConstFact    { return ConstFact{} }

// Boundary: every variable starts NAC — globals are written by the
// environment and the semantics constrain no initial value.
func (p *constProblem) Boundary() ConstFact {
	return ConstFact{Vals: make([]Value, len(p.vars.names))}
}

func (p *constProblem) Join(dst, src ConstFact) (ConstFact, bool) {
	if !src.reached() {
		return dst, false
	}
	if !dst.reached() {
		out := ConstFact{Vals: make([]Value, len(src.Vals))}
		copy(out.Vals, src.Vals)
		return out, true
	}
	changed := false
	for i := range dst.Vals {
		if dst.Vals[i].eq(src.Vals[i]) {
			continue
		}
		if dst.Vals[i].Kind != valNAC {
			dst.Vals[i] = Value{Kind: valNAC}
			changed = true
		}
	}
	return dst, changed
}

func (p *constProblem) Transfer(e *cfa.Edge, in ConstFact) ConstFact {
	if !in.reached() {
		return in
	}
	out := ConstFact{Vals: make([]Value, len(in.Vals))}
	copy(out.Vals, in.Vals)
	switch e.Op.Kind {
	case cfa.OpAssign:
		p.assign(out.Vals, e.Op.LHS, p.eval(e.Op.RHS, in.Vals))
	case cfa.OpHavoc:
		p.assign(out.Vals, e.Op.LHS, Value{Kind: valNAC})
	case cfa.OpAssume:
		switch p.evalPred(e.Op.Pred, in.Vals) {
		case predFalse:
			return ConstFact{} // the guard cannot pass: successor unreached
		default:
			p.refine(e.Op.Pred, out.Vals)
		}
	}
	return out
}

// assign writes v into x and invalidates every copy whose source was x —
// "y = x" stops meaning anything once x changes.
func (p *constProblem) assign(vals []Value, x string, v Value) {
	i, ok := p.vars.idx[x]
	if !ok {
		return
	}
	for j := range vals {
		if vals[j].Kind == valCopy && vals[j].Src == x {
			vals[j] = Value{Kind: valNAC}
		}
	}
	vals[i] = v
}

// eval abstracts an arithmetic expression over the current fact.
func (p *constProblem) eval(e expr.Expr, vals []Value) Value {
	switch e := e.(type) {
	case expr.Int:
		return Value{Kind: valConst, N: e.Value}
	case expr.Var:
		i, ok := p.vars.idx[e.Name]
		if !ok {
			return Value{Kind: valNAC}
		}
		switch v := vals[i]; v.Kind {
		case valConst:
			return v
		case valCopy:
			// Chains are collapsed at assignment time, so a copy's source
			// is never itself a copy; propagate it as the copy value.
			return v
		default:
			return Value{Kind: valCopy, Src: e.Name}
		}
	case expr.Bin:
		x, y := p.eval(e.X, vals), p.eval(e.Y, vals)
		a, aok := x.IsConst()
		b, bok := y.IsConst()
		if !aok || !bok {
			return Value{Kind: valNAC}
		}
		switch e.Op {
		case expr.OpAdd:
			return Value{Kind: valConst, N: a + b}
		case expr.OpSub:
			return Value{Kind: valConst, N: a - b}
		case expr.OpMul:
			return Value{Kind: valConst, N: a * b}
		}
	}
	return Value{Kind: valNAC}
}

type predVal int

const (
	predUnknown predVal = iota
	predTrue
	predFalse
)

// evalPred abstracts a boolean predicate over the current fact.
func (p *constProblem) evalPred(e expr.Expr, vals []Value) predVal {
	switch e := e.(type) {
	case expr.Bool:
		if e.Value {
			return predTrue
		}
		return predFalse
	case expr.Cmp:
		a, aok := p.eval(e.X, vals).IsConst()
		b, bok := p.eval(e.Y, vals).IsConst()
		if !aok || !bok {
			return predUnknown
		}
		var holds bool
		switch e.Op {
		case expr.OpEq:
			holds = a == b
		case expr.OpNe:
			holds = a != b
		case expr.OpLt:
			holds = a < b
		case expr.OpLe:
			holds = a <= b
		case expr.OpGt:
			holds = a > b
		case expr.OpGe:
			holds = a >= b
		default:
			return predUnknown
		}
		if holds {
			return predTrue
		}
		return predFalse
	case expr.Not:
		switch p.evalPred(e.X, vals) {
		case predTrue:
			return predFalse
		case predFalse:
			return predTrue
		}
	case expr.And:
		all := predTrue
		for _, c := range e.Xs {
			switch p.evalPred(c, vals) {
			case predFalse:
				return predFalse
			case predUnknown:
				all = predUnknown
			}
		}
		return all
	case expr.Or:
		any := predFalse
		for _, c := range e.Xs {
			switch p.evalPred(c, vals) {
			case predTrue:
				return predTrue
			case predUnknown:
				any = predUnknown
			}
		}
		return any
	}
	return predUnknown
}

// refine sharpens the fact through an assume edge: passing [x == c]
// pins x to c on the far side.
func (p *constProblem) refine(pred expr.Expr, vals []Value) {
	switch e := pred.(type) {
	case expr.Cmp:
		if e.Op != expr.OpEq {
			return
		}
		if v, ok := e.X.(expr.Var); ok {
			if c, ok := p.eval(e.Y, vals).IsConst(); ok {
				p.pin(vals, v.Name, c)
			}
		}
		if v, ok := e.Y.(expr.Var); ok {
			if c, ok := p.eval(e.X, vals).IsConst(); ok {
				p.pin(vals, v.Name, c)
			}
		}
	case expr.And:
		for _, c := range e.Xs {
			p.refine(c, vals)
		}
	}
}

func (p *constProblem) pin(vals []Value, x string, c int64) {
	if i, ok := p.vars.idx[x]; ok {
		vals[i] = Value{Kind: valConst, N: c}
	}
}

// ConstantPropagation computes, per location, which variables are pinned
// to known constants (or are exact copies of other variables) on every
// path from the entry. The entry fact is all-NAC: the checker's
// semantics give variables arbitrary initial values.
func ConstantPropagation(c *cfa.CFA) *ConstResult {
	vars := indexVars(c)
	p := &constProblem{vars: vars}
	return &ConstResult{Vars: vars.names, In: Solve[ConstFact](c, p), idx: vars.idx}
}
