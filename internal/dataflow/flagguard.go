package dataflow

import (
	"fmt"
	"sort"

	"circ/internal/cfa"
	"circ/internal/expr"
)

// Flag-guarded exclusion: a forward must-analysis over the product of the
// constant/copy lattice (interference-aware variant) and a per-flag
// ownership status. It proves the busy-flag idiom the paper's benchmarks
// are built from:
//
//	atomic { old = flag; if (flag == U) { flag = A; } }
//	if (old == U) { ...guarded region...; flag = U; }
//
// For a candidate flag f with "unlocked" value U the analysis classifies
// every write to f as an acquire (an atomic test-and-set: the write of a
// locked value A != U happens from an atomic location where the fact
// f == U provably holds), an owner re-write (a locked value written while
// the thread provably owns the flag), or a release (f := U, which the
// protocol only permits while owning the flag). Any other write — a
// havoc, a non-constant right-hand side, or a release by a non-owner —
// disqualifies f.
//
// Soundness rests on the invariant "f == U implies no thread owns f":
// an acquire atomically observes f == U (so no owner exists) and
// installs a locked value; owner re-writes keep the flag locked; the
// unique owner is the only thread that may write U back. A blind write
// of a locked value by a non-owner cannot release anyone else's
// ownership, so it is tolerated without conferring ownership. Hence two
// threads can never simultaneously be at locations whose must-status is
// "owns f", and accesses confined to such locations cannot race.
//
// The value component differs from plain constant propagation in one way:
// facts about globals (and copies of globals) are killed on every edge
// whose destination is non-atomic, because at a non-atomic location other
// threads run and may rewrite any global. Facts about locals survive.
//
// Ownership is path-sensitive at joins: merging an "owns" branch with a
// "does not own" branch synthesizes conditional ownership Cond(w = a) when
// a local witness w provably equals a on the owning side and provably
// differs from a on the other (the "old" variable of the test-and-set
// idiom). A later assume that decides w against a decides ownership.

// ownStatus is the must-ownership of the candidate flag at a location.
type ownStatus int8

const (
	// ownNo: on every path here the thread does not own the flag.
	ownNo ownStatus = iota
	// ownOwn: on every path here the thread owns the flag.
	ownOwn
	// ownCond: ownership is equivalent to a witness equality (see
	// condPair); holds on every path here.
	ownCond
	// ownTop: ownership unknown.
	ownTop
)

// condPair is one conditional-ownership witness: the thread owns the
// flag iff local variable w (by index) equals a.
type condPair struct {
	w int
	a int64
}

// guardFact is the product fact: interference-scrubbed values plus
// flag-ownership. A nil vals slice is the lattice bottom (unreached).
type guardFact struct {
	vals  []Value
	own   ownStatus
	pairs []condPair // ownCond only, sorted by (w, a)
}

type flagProblem struct {
	cp       *constProblem
	c        *cfa.CFA
	flag     string
	flagIdx  int
	unlock   int64
	isGlobal []bool // per variable index

	// Filled in during the solve.
	invalid      bool
	invalidWhy   string
	acquireConst map[int64]bool // locked values installed by acquires
}

func (p *flagProblem) Direction() Direction { return Forward }
func (p *flagProblem) Bottom() guardFact    { return guardFact{} }

// Boundary: all values unknown, and the thread does not own the flag —
// ownership only ever originates in an acquire it performs itself.
func (p *flagProblem) Boundary() guardFact {
	return guardFact{vals: make([]Value, len(p.cp.vars.names)), own: ownNo}
}

func (p *flagProblem) Join(dst, src guardFact) (guardFact, bool) {
	if src.vals == nil {
		return dst, false
	}
	if dst.vals == nil {
		out := guardFact{
			vals:  append([]Value(nil), src.vals...),
			own:   src.own,
			pairs: append([]condPair(nil), src.pairs...),
		}
		return out, true
	}
	changed := false
	// Ownership joins first: Cond synthesis needs each side's value
	// facts before they are merged.
	own, pairs := p.joinOwn(dst, src)
	if own != dst.own || !pairsEq(pairs, dst.pairs) {
		dst.own, dst.pairs = own, pairs
		changed = true
	}
	for i := range dst.vals {
		j := joinVal(dst.vals[i], src.vals[i])
		if !j.eq(dst.vals[i]) {
			dst.vals[i] = j
			changed = true
		}
	}
	return dst, changed
}

func (p *flagProblem) joinOwn(dst, src guardFact) (ownStatus, []condPair) {
	a, b := dst.own, src.own
	switch {
	case a == b && a != ownCond:
		return a, nil
	case a == ownCond && b == ownCond:
		return condOrTop(intersectPairs(dst.pairs, src.pairs))
	case a == ownTop || b == ownTop:
		return ownTop, nil
	case (a == ownOwn && b == ownNo) || (a == ownNo && b == ownOwn):
		ownVals, noVals := dst.vals, src.vals
		if a == ownNo {
			ownVals, noVals = src.vals, dst.vals
		}
		return condOrTop(p.synthPairs(ownVals, noVals))
	default: // Cond against Own or No: keep the pairs the plain side supports.
		condSide, other := dst, src
		if b == ownCond {
			condSide, other = src, dst
		}
		var keep []condPair
		for _, pr := range condSide.pairs {
			switch other.own {
			case ownOwn:
				if c, ok := p.constIdx(other.vals, pr.w); ok && c == pr.a {
					keep = append(keep, pr)
				}
			case ownNo:
				if p.neIdx(other.vals, pr.w, pr.a) {
					keep = append(keep, pr)
				}
			}
		}
		return condOrTop(keep)
	}
}

func condOrTop(pairs []condPair) (ownStatus, []condPair) {
	if len(pairs) == 0 {
		return ownTop, nil
	}
	return ownCond, pairs
}

// synthPairs finds conditional-ownership witnesses: locals that provably
// equal some a on the owning side and provably differ from a on the
// non-owning side. Every path into the join then satisfies
// "owns iff w == a".
func (p *flagProblem) synthPairs(ownVals, noVals []Value) []condPair {
	var out []condPair
	for w := range ownVals {
		if p.isGlobal[w] {
			continue // witnesses must be interference-free
		}
		if a, ok := p.constIdx(ownVals, w); ok && p.neIdx(noVals, w, a) {
			out = append(out, condPair{w: w, a: a})
		}
	}
	return out
}

// constIdx resolves variable index i to a must-constant, following one
// copy link.
func (p *flagProblem) constIdx(vals []Value, i int) (int64, bool) {
	v := vals[i]
	if v.Kind == valCopy {
		if j, ok := p.cp.vars.idx[v.Src]; ok {
			v = vals[j]
		}
	}
	return v.IsConst()
}

// neIdx reports whether variable index i provably differs from a.
func (p *flagProblem) neIdx(vals []Value, i int, a int64) bool {
	v := vals[i]
	if v.Kind == valCopy {
		if j, ok := p.cp.vars.idx[v.Src]; ok {
			v = vals[j]
		}
	}
	switch v.Kind {
	case valConst:
		return v.N != a
	case valNe:
		return v.N == a
	}
	return false
}

func pairsEq(a, b []condPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intersectPairs(a, b []condPair) []condPair {
	var out []condPair
	for _, pa := range a {
		for _, pb := range b {
			if pa == pb {
				out = append(out, pa)
				break
			}
		}
	}
	return out
}

func dropPairs(pairs []condPair, w int) []condPair {
	var out []condPair
	for _, pr := range pairs {
		if pr.w != w {
			out = append(out, pr)
		}
	}
	return out
}

func (p *flagProblem) Transfer(e *cfa.Edge, in guardFact) guardFact {
	if in.vals == nil {
		return guardFact{}
	}
	out := guardFact{
		vals:  append([]Value(nil), in.vals...),
		own:   in.own,
		pairs: append([]condPair(nil), in.pairs...),
	}
	switch e.Op.Kind {
	case cfa.OpAssign:
		p.cp.assign(out.vals, e.Op.LHS, p.cp.evalStore(e.Op.RHS, in.vals))
	case cfa.OpHavoc:
		p.cp.assign(out.vals, e.Op.LHS, Value{Kind: valNAC})
	case cfa.OpAssume:
		if p.cp.evalPred(e.Op.Pred, in.vals) == predFalse {
			return guardFact{} // guard cannot pass: successor unreached
		}
		p.cp.refine(e.Op.Pred, out.vals)
	}
	// A write to a conditional-ownership witness decouples it from the
	// ownership it witnessed.
	if w := e.Writes(); w != "" && out.own == ownCond {
		if wi, ok := p.cp.vars.idx[w]; ok {
			out.pairs = dropPairs(out.pairs, wi)
			if len(out.pairs) == 0 {
				out.own = ownTop
			}
		}
	}
	// A refined fact that decides a surviving witness decides ownership
	// (only assume edges can newly decide one — assignments to witnesses
	// were dropped above).
	if out.own == ownCond {
		for _, pr := range out.pairs {
			if c, ok := p.constIdx(out.vals, pr.w); ok && c == pr.a {
				out.own, out.pairs = ownOwn, nil
				break
			}
			if p.neIdx(out.vals, pr.w, pr.a) {
				out.own, out.pairs = ownNo, nil
				break
			}
		}
	}
	if e.Writes() == p.flag {
		p.classifyFlagWrite(e, in, &out)
	}
	// Interference: at a non-atomic destination other threads run, so
	// every fact about a global (or a copy of one) is stale.
	if !p.c.IsAtomic(e.Dst) {
		p.scrub(out.vals)
	}
	return out
}

// classifyFlagWrite applies the acquire/owner-write/release protocol to a
// write of the candidate flag, updating ownership or disqualifying the
// flag.
func (p *flagProblem) classifyFlagWrite(e *cfa.Edge, in guardFact, out *guardFact) {
	if e.Op.Kind == cfa.OpHavoc {
		p.disqualify("havoc write %s at loc %d", e.Op, e.Src)
		return
	}
	c, ok := p.cp.eval(e.Op.RHS, in.vals).IsConst()
	if !ok {
		p.disqualify("non-constant write %s at loc %d", e.Op, e.Src)
		return
	}
	switch {
	case c == p.unlock:
		// Release. Only the owner may return the flag to its unlocked
		// value — a foreign release would let a second acquire succeed
		// while the real owner still sits in the guarded region.
		if in.own != ownOwn {
			p.disqualify("release %s at loc %d without ownership", e.Op, e.Src)
			return
		}
		out.own, out.pairs = ownNo, nil
	case in.own == ownOwn:
		// Owner re-write to another locked value: ownership continues.
	case p.c.IsAtomic(e.Src) && p.mustFlagUnlocked(in.vals):
		// Acquire: an atomic test-and-set. The write happens from an
		// atomic location where f == unlock provably holds, so no other
		// thread owns the flag and the locked value installs ownership.
		out.own, out.pairs = ownOwn, nil
		p.acquireConst[c] = true
	default:
		// A blind write of a locked value by a possible non-owner: it can
		// never release anyone's ownership, so mutual exclusion survives
		// and the writer's own status is unchanged.
	}
}

func (p *flagProblem) mustFlagUnlocked(vals []Value) bool {
	c, ok := p.constIdx(vals, p.flagIdx)
	return ok && c == p.unlock
}

func (p *flagProblem) disqualify(format string, args ...any) {
	if !p.invalid {
		p.invalid = true
		p.invalidWhy = fmt.Sprintf(format, args...)
	}
}

// scrub kills facts other threads can invalidate: values of globals and
// copies whose source is a global.
func (p *flagProblem) scrub(vals []Value) {
	for i := range vals {
		switch vals[i].Kind {
		case valConst, valNe:
			if p.isGlobal[i] {
				vals[i] = Value{Kind: valNAC}
			}
		case valCopy:
			if j, ok := p.cp.vars.idx[vals[i].Src]; ok && (p.isGlobal[i] || p.isGlobal[j]) {
				vals[i] = Value{Kind: valNAC}
			}
		}
	}
}

// flagSolution is the solved analysis for one (flag, unlock) candidate.
type flagSolution struct {
	flag          string
	unlock        int64
	valid         bool
	invalidWhy    string
	in            []guardFact // per location
	acquireConsts []int64     // sorted locked values installed by acquires
	prob          *flagProblem
}

// FlagGuardResult holds the flag-guard solutions for one CFA, one per
// candidate busy flag.
type FlagGuardResult struct {
	c    *cfa.CFA
	sols []*flagSolution // in Globals order, then by unlock value
}

// SeedPred is one guard fact exported as an initial abstraction
// predicate, with its provenance.
type SeedPred struct {
	// Pred is the predicate, over CFA variable names.
	Pred expr.Expr
	// Origin names the candidate flag the fact was proved about.
	Origin string
}

// FlagGuard runs the flag-guarded exclusion analysis on c. Candidate
// flags are globals that are compared against a constant somewhere and
// written a constant from an atomic location — the shape of a busy flag;
// each constant the flag is compared against is tried as the unlocked
// value. The result answers discharge queries per global and exports the
// proven guard facts as seed predicates.
func FlagGuard(c *cfa.CFA) *FlagGuardResult {
	r := &FlagGuardResult{c: c}
	for _, f := range c.Globals {
		if !hasAtomicConstWrite(c, f) {
			continue
		}
		for _, unlock := range comparedConsts(c, f) {
			r.sols = append(r.sols, solveFlag(c, f, unlock))
		}
	}
	return r
}

func solveFlag(c *cfa.CFA, flag string, unlock int64) *flagSolution {
	vars := indexVars(c)
	p := &flagProblem{
		cp:           &constProblem{vars: vars},
		c:            c,
		flag:         flag,
		flagIdx:      vars.idx[flag],
		unlock:       unlock,
		isGlobal:     make([]bool, len(vars.names)),
		acquireConst: map[int64]bool{},
	}
	for i, name := range vars.names {
		p.isGlobal[i] = c.IsGlobal(name)
	}
	sol := &flagSolution{flag: flag, unlock: unlock, prob: p}
	sol.in = Solve[guardFact](c, p)
	for a := range p.acquireConst {
		sol.acquireConsts = append(sol.acquireConsts, a)
	}
	sort.Slice(sol.acquireConsts, func(i, j int) bool { return sol.acquireConsts[i] < sol.acquireConsts[j] })
	sol.valid = !p.invalid && len(sol.acquireConsts) > 0
	sol.invalidWhy = p.invalidWhy
	return sol
}

// hasAtomicConstWrite reports whether some edge writes a literal constant
// to f from an atomic location — the minimum footprint of an acquire.
func hasAtomicConstWrite(c *cfa.CFA, f string) bool {
	for _, e := range c.Edges {
		if e.Writes() != f || e.Op.Kind != cfa.OpAssign || !c.IsAtomic(e.Src) || !c.Reachable(e.Src) {
			continue
		}
		if _, ok := e.Op.RHS.(expr.Int); ok {
			return true
		}
	}
	return false
}

// comparedConsts collects the constants f is compared against by
// (dis)equality guards, sorted — the candidate unlocked values.
func comparedConsts(c *cfa.CFA, f string) []int64 {
	seen := map[int64]bool{}
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		switch e := e.(type) {
		case expr.Cmp:
			if e.Op != expr.OpEq && e.Op != expr.OpNe {
				return
			}
			if v, ok := e.X.(expr.Var); ok && v.Name == f {
				if n, ok := e.Y.(expr.Int); ok {
					seen[n.Value] = true
				}
			}
			if v, ok := e.Y.(expr.Var); ok && v.Name == f {
				if n, ok := e.X.(expr.Int); ok {
					seen[n.Value] = true
				}
			}
		case expr.Not:
			walk(e.X)
		case expr.And:
			for _, x := range e.Xs {
				walk(x)
			}
		case expr.Or:
			for _, x := range e.Xs {
				walk(x)
			}
		}
	}
	for _, e := range c.Edges {
		if e.Op.Kind == cfa.OpAssume && c.Reachable(e.Src) {
			walk(e.Op.Pred)
		}
	}
	out := make([]int64, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Discharge reports whether every reachable uncovered access to g sits in
// a region some valid flag's must-analysis marks as owned. Two template
// copies can then never co-occupy the accessing locations: the uncovered
// ones require owning the same single-owner flag, and the covered ones
// occupy atomic locations the race definition already excludes.
func (r *FlagGuardResult) Discharge(g string) (Discharge, bool) {
	for _, sol := range r.sols {
		if !sol.valid {
			continue
		}
		uncovered, ok := sol.covers(r.c, g)
		if !ok {
			continue
		}
		return Discharge{
			Reason: ReasonFlagGuarded,
			Detail: fmt.Sprintf("%d uncovered access(es) to %s owned under busy flag %s (unlocked=%d, locked=%v)",
				uncovered, g, sol.flag, sol.unlock, sol.acquireConsts),
		}, true
	}
	return Discharge{}, false
}

// covers checks every access to g against sol's ownership map, returning
// the number of uncovered (non-atomic) accesses it had to justify.
func (sol *flagSolution) covers(c *cfa.CFA, g string) (int, bool) {
	uncovered := 0
	for _, e := range c.Edges {
		if e.Writes() != g && !e.Reads()[g] {
			continue
		}
		if sol.in[e.Src].vals == nil {
			continue // unreached under the guarded semantics
		}
		if c.IsAtomic(e.Src) {
			continue
		}
		if sol.in[e.Src].own != ownOwn {
			return 0, false
		}
		uncovered++
	}
	return uncovered, true
}

// SeedPredicates exports the analysis's guard facts as initial
// abstraction predicates for a non-discharged global: equality of each
// candidate flag with its unlocked and locked values, plus the
// conditional-ownership witness equalities (the "old" locals of
// test-and-set idioms). Seeding is purely a precision hint — predicate
// abstraction is sound for any predicate set — so facts from disqualified
// flags are exported too. The list is deduplicated, deterministic, and
// capped.
func (r *FlagGuardResult) SeedPredicates() []SeedPred {
	const maxSeeds = 12
	var out []SeedPred
	seen := map[string]bool{}
	add := func(origin string, p expr.Expr) {
		if k := p.Key(); !seen[k] && len(out) < maxSeeds {
			seen[k] = true
			out = append(out, SeedPred{Pred: p, Origin: origin})
		}
	}
	for _, sol := range r.sols {
		add(sol.flag, expr.Eq(expr.V(sol.flag), expr.Num(sol.unlock)))
		for _, a := range sol.acquireConsts {
			add(sol.flag, expr.Eq(expr.V(sol.flag), expr.Num(a)))
		}
		// Locked values written blindly still shape the flag's domain.
		for _, e := range r.c.Edges {
			if e.Writes() == sol.flag && e.Op.Kind == cfa.OpAssign {
				if n, ok := e.Op.RHS.(expr.Int); ok && n.Value != sol.unlock {
					add(sol.flag, expr.Eq(expr.V(sol.flag), expr.Num(n.Value)))
				}
			}
		}
		// Witness equalities from conditional ownership.
		pairs := map[condPair]bool{}
		for _, f := range sol.in {
			for _, pr := range f.pairs {
				pairs[pr] = true
			}
		}
		sorted := make([]condPair, 0, len(pairs))
		for pr := range pairs {
			sorted = append(sorted, pr)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].w != sorted[j].w {
				return sorted[i].w < sorted[j].w
			}
			return sorted[i].a < sorted[j].a
		})
		for _, pr := range sorted {
			add(sol.flag, expr.Eq(expr.V(sol.prob.cp.vars.names[pr.w]), expr.Num(pr.a)))
		}
	}
	return out
}
