package dataflow

import (
	"testing"

	"circ/internal/benchapps"
	"circ/internal/cfa"
	"circ/internal/expr"
)

// buildApp builds the CFA of a benchapps model.
func buildApp(t *testing.T, name, variable string) *cfa.CFA {
	t.Helper()
	a := benchapps.Get(name, variable)
	if a == nil {
		t.Fatalf("no benchapp %s/%s", name, variable)
	}
	return mustBuild(t, a.Source, "")
}

func TestFlagGuardTestAndSet(t *testing.T) {
	// Figure 1's test-and-set: the winner of the atomic exchange owns the
	// flag; the protected counter AND the flag's own non-atomic release
	// are both confined to the owned region.
	c := buildApp(t, "secureTosBase", "gTxByteCnt")
	for _, g := range []string{"gTxByteCnt", "txState"} {
		d, ok := Triage(c, g)
		if !ok || d.Reason != ReasonFlagGuarded {
			t.Errorf("Triage(%s) = (%q, %v), want flag-guarded", g, d.Reason, ok)
		}
	}
}

func TestFlagGuardMultiStateMachine(t *testing.T) {
	// gTxState guards itself: owner drives it through 2 and 3 outside
	// atomic sections, then releases atomically.
	c := buildApp(t, "secureTosBase", "gTxState")
	d, ok := Triage(c, "gTxState")
	if !ok || d.Reason != ReasonFlagGuarded {
		t.Fatalf("Triage(gTxState) = (%q, %v), want flag-guarded", d.Reason, ok)
	}
}

func TestFlagGuardHeadIndex(t *testing.T) {
	// Conditional accesses retained through states 1 and 2: ownership
	// survives owner re-writes of the state variable.
	c := buildApp(t, "secureTosBase", "gRxHeadIndex")
	d, ok := Triage(c, "gRxHeadIndex")
	if !ok || d.Reason != ReasonFlagGuarded {
		t.Fatalf("Triage(gRxHeadIndex) = (%q, %v), want flag-guarded", d.Reason, ok)
	}
}

func TestFlagGuardConditionalLocking(t *testing.T) {
	// The Section 1 idiom that defeats lockset analyses: the acquire's
	// success is observed through a function return value. Conditional
	// ownership plus copy-pinning recovers it.
	for _, a := range benchapps.FalsePositiveSuite() {
		if a.Idiom != "conditional locking via function return" {
			continue
		}
		c := mustBuild(t, a.Source, "")
		d, ok := Triage(c, "x")
		if !ok || d.Reason != ReasonFlagGuarded {
			t.Fatalf("Triage(x) = (%q, %v), want flag-guarded", d.Reason, ok)
		}
		return
	}
	t.Fatal("conditional-locking app not found")
}

func TestFlagGuardRejectsBuggyVariants(t *testing.T) {
	// The Section 6 genuine races must NOT be discharged: an access after
	// the release (multiStateMachine) and a foreign release by an
	// always-enabled interrupt (sensePort).
	for _, a := range benchapps.Section6Races() {
		c := mustBuild(t, a.Source, "")
		if d, ok := Triage(c, a.Variable); ok {
			t.Errorf("%s/%s: buggy variant discharged as %q — unsound", a.Name, a.Variable, d.Reason)
		}
	}
}

func TestFlagGuardLeavesResidueToCIRC(t *testing.T) {
	// Safe but beyond the single-flag protocol: splitPhase transfers
	// ownership between interrupt and task via the interrupt bit, and the
	// modelled sensePort releases through the interrupt handler. Both
	// must fall through to the inference engine — with seed predicates.
	cases := []struct{ name, variable string }{
		{"surge", "rec_ptr"},
		{"sense", "tosPort"},
	}
	for _, tc := range cases {
		c := buildApp(t, tc.name, tc.variable)
		if d, ok := Triage(c, tc.variable); ok {
			t.Errorf("%s/%s discharged as %q, want residue for CIRC", tc.name, tc.variable, d.Reason)
			continue
		}
		seeds := FlagGuard(c).SeedPredicates()
		if len(seeds) == 0 {
			t.Errorf("%s/%s: no seed predicates from the guard analysis", tc.name, tc.variable)
		}
		for _, s := range seeds {
			if s.Origin == "" || s.Pred == nil {
				t.Errorf("%s/%s: seed without provenance: %+v", tc.name, tc.variable, s)
			}
		}
	}
}

func TestFlagGuardSeedsMentionFlag(t *testing.T) {
	// The modelled sensePort's handshake bits are exactly the predicates
	// CIRC needs; the exporter must surface both state variables.
	c := buildApp(t, "sense", "tosPort")
	seeds := FlagGuard(c).SeedPredicates()
	byVar := map[string]bool{}
	for _, s := range seeds {
		for v := range expr.FreeVars(s.Pred) {
			byVar[v] = true
		}
	}
	if !byVar["sState"] {
		t.Errorf("seeds %v do not mention sState", seeds)
	}
}

func TestFlagGuardRaceNotDischarged(t *testing.T) {
	// The unprotected counter has no flag at all.
	c := mustBuild(t, `
global int x;

thread Worker {
  while (1) {
    x = x + 1;
  }
}
`, "")
	if d, ok := Triage(c, "x"); ok {
		t.Fatalf("unprotected counter discharged as %q", d.Reason)
	}
}

func TestFlagGuardRejectsNonConstWrite(t *testing.T) {
	// A flag that is also written a non-constant value cannot carry the
	// protocol: the write might be the unlocked value.
	c := mustBuild(t, `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = x;
    }
  }
}
`, "")
	if d, ok := Triage(c, "x"); ok {
		t.Fatalf("non-constant release discharged as %q", d.Reason)
	}
}

// Satellite: constprop assume-refinement on negated guards.
func TestConstantPropagationNegatedGuard(t *testing.T) {
	// assume [!(flag==1)] pins flag != 1; a later [flag==1] is then
	// statically unreachable.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssume,
			Pred: expr.Not{X: expr.Eq(expr.V("flag"), expr.Num(1))}}},
		{Src: 1, Dst: 2, Op: cfa.Op{Kind: cfa.OpAssume,
			Pred: expr.Eq(expr.V("flag"), expr.Num(1))}},
		{Src: 1, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssume,
			Pred: expr.Ne(expr.V("flag"), expr.Num(1))}},
	}
	c := cfa.New("negated", []string{"flag"}, nil, 0, make([]bool, 4), edges)
	r := ConstantPropagation(c)
	if r.Reached(2) {
		t.Error("[flag==1] passed although !(flag==1) was assumed")
	}
	if !r.Reached(3) {
		t.Error("[flag!=1] blocked although !(flag==1) was assumed")
	}
}

func TestConstantPropagationNegatedGuardThroughCopy(t *testing.T) {
	// old = flag; assume [!(old==1)]: the disequality transfers to flag
	// through the copy relation, in both directions.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "old", RHS: expr.V("flag")}},
		{Src: 1, Dst: 2, Op: cfa.Op{Kind: cfa.OpAssume,
			Pred: expr.Not{X: expr.Eq(expr.V("old"), expr.Num(1))}}},
		{Src: 2, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssume,
			Pred: expr.Eq(expr.V("flag"), expr.Num(1))}},
	}
	c := cfa.New("negated-copy", []string{"flag"}, []string{"old"}, 0, make([]bool, 4), edges)
	r := ConstantPropagation(c)
	if r.Reached(3) {
		t.Error("[flag==1] passed although !(old==1) with old==flag was assumed")
	}
}

// Satellite: backward analyses must seed every location on while(1)
// templates — such CFAs have no exit location, and an exit-only boundary
// would leave every fact bottom.
func TestLiveVariablesWhileOneBoundary(t *testing.T) {
	c := mustBuild(t, `
global int g;

thread T {
  local int tmp;
  while (1) {
    tmp = g;
    g = tmp + 1;
  }
}
`, "")
	r := LiveVariables(c)
	live := 0
	for l := cfa.Loc(0); l < cfa.Loc(c.NumLocs()); l++ {
		if r.LiveAt(l, "g") {
			live++
		}
	}
	if live == 0 {
		t.Fatal("g live nowhere on a while(1) template — backward boundary seeding is broken")
	}
}
