// Package dataflow is a generic monotone dataflow framework over control
// flow automata, plus the concrete analyses the race checker's static
// triage stage is built from: reaching definitions, live variables,
// constant/copy propagation, per-global access classification
// (thread-local, read-only, atomic-covered), and per-target
// cone-of-influence slicing.
//
// The framework is the textbook construction: a Problem supplies a join
// semilattice of facts and a monotone transfer function per edge, and
// Solve iterates a worklist to the least fixpoint. Directions are
// symmetric — a Forward problem propagates facts along edges from the
// entry, a Backward problem propagates against edges from the exits.
package dataflow

import (
	"math/bits"

	"circ/internal/cfa"
)

// Direction orients a dataflow problem.
type Direction int

// Directions.
const (
	// Forward propagates facts along edges, seeding the entry location.
	Forward Direction = iota
	// Backward propagates facts against edges, seeding every exit
	// location (locations with no outgoing edges).
	Backward
)

// Problem is one dataflow analysis: a join semilattice of facts F with a
// monotone transfer function per CFA edge. Join and Transfer must be
// monotone and the lattice of finite height, or Solve will not terminate.
type Problem[F any] interface {
	// Direction orients the analysis.
	Direction() Direction
	// Bottom is the lattice's least element, the identity of Join. It is
	// the initial fact at every non-boundary location.
	Bottom() F
	// Boundary is the fact at the entry location (Forward) or at every
	// exit location (Backward).
	Boundary() F
	// Join merges src into dst and reports whether dst grew. It may
	// mutate and return dst (Solve never aliases facts across locations),
	// but must not mutate src.
	Join(dst, src F) (F, bool)
	// Transfer pushes the fact in through edge e: the fact at e.Src is
	// transformed into a contribution to e.Dst (Forward), or the fact at
	// e.Dst into a contribution to e.Src (Backward). It must not mutate
	// in.
	Transfer(e *cfa.Edge, in F) F
}

// Solve runs worklist iteration to the least fixpoint of p over c and
// returns the per-location solution: for Forward problems the fact
// holding on entry to each location, for Backward problems the fact
// holding on exit from each location. Iteration order is deterministic
// (FIFO worklist seeded in location order), and since the fixpoint is
// unique the result does not depend on it.
func Solve[F any](c *cfa.CFA, p Problem[F]) []F {
	n := c.NumLocs()
	facts := make([]F, n)
	for l := 0; l < n; l++ {
		facts[l] = p.Bottom()
	}

	// For Backward problems facts flow from an edge's destination to its
	// source, so the "successors to reprocess" of l are its predecessors.
	var in [][]*cfa.Edge
	if p.Direction() == Backward {
		in = make([][]*cfa.Edge, n)
		for _, e := range c.Edges {
			in[e.Dst] = append(in[e.Dst], e)
		}
	}

	queued := make([]bool, n)
	var work []cfa.Loc
	push := func(l cfa.Loc) {
		if !queued[l] {
			queued[l] = true
			work = append(work, l)
		}
	}

	// Seed the boundary.
	switch p.Direction() {
	case Forward:
		facts[c.Entry], _ = p.Join(facts[c.Entry], p.Boundary())
		push(c.Entry)
	case Backward:
		for l := 0; l < n; l++ {
			if len(c.OutEdges(cfa.Loc(l))) == 0 {
				facts[l], _ = p.Join(facts[l], p.Boundary())
			}
			// Seed everything: backward liveness must reach loop bodies
			// even when no exit is reachable from them (e.g. while(1)).
			push(cfa.Loc(l))
		}
	}

	for len(work) > 0 {
		l := work[0]
		work = work[1:]
		queued[l] = false
		switch p.Direction() {
		case Forward:
			for _, e := range c.OutEdges(l) {
				out := p.Transfer(e, facts[l])
				var changed bool
				facts[e.Dst], changed = p.Join(facts[e.Dst], out)
				if changed {
					push(e.Dst)
				}
			}
		case Backward:
			for _, e := range in[l] {
				out := p.Transfer(e, facts[l])
				var changed bool
				facts[e.Src], changed = p.Join(facts[e.Src], out)
				if changed {
					push(e.Src)
				}
			}
		}
	}
	return facts
}

// BitSet is a dense bit vector used as the powerset-lattice fact of
// reaching definitions and live variables.
type BitSet []uint64

// NewBitSet returns an empty set over a universe of n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether element i is in the set.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Set adds element i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear removes element i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// UnionInto ors src into b and reports whether b grew.
func (b BitSet) UnionInto(src BitSet) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// AndNot removes every element of src from b.
func (b BitSet) AndNot(src BitSet) {
	for i, w := range src {
		b[i] &^= w
	}
}

// Copy returns an independent copy of b.
func (b BitSet) Copy() BitSet {
	out := make(BitSet, len(b))
	copy(out, b)
	return out
}

// Count returns the number of elements in the set.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Elems returns the elements of b in increasing order.
func (b BitSet) Elems() []int {
	var out []int
	for i := range b {
		for w := b[i]; w != 0; w &= w - 1 {
			out = append(out, i*64+bits.TrailingZeros64(w))
		}
	}
	return out
}

// varIndex assigns dense indices to a CFA's variables (globals then
// locals, in declaration order) for bitset-valued analyses.
type varIndex struct {
	names []string
	idx   map[string]int
}

func indexVars(c *cfa.CFA) *varIndex {
	v := &varIndex{idx: make(map[string]int, len(c.Globals)+len(c.Locals))}
	add := func(name string) {
		if _, ok := v.idx[name]; !ok {
			v.idx[name] = len(v.names)
			v.names = append(v.names, name)
		}
	}
	for _, g := range c.Globals {
		add(g)
	}
	for _, l := range c.Locals {
		add(l)
	}
	return v
}
