package dataflow

import (
	"testing"

	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/lang"
)

// diamond builds the classic two-armed CFA:
//
//	0 --x:=1--> 1 --skip--> 3
//	0 --x:=2--> 2 --y:=x--> 3
func diamond() *cfa.CFA {
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "x", RHS: expr.Num(1)}},
		{Src: 0, Dst: 2, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "x", RHS: expr.Num(2)}},
		{Src: 1, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssume, Pred: expr.TrueExpr}},
		{Src: 2, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "y", RHS: expr.V("x")}},
	}
	return cfa.New("diamond", []string{"x"}, []string{"y"}, 0, make([]bool, 4), edges)
}

func TestReachingDefinitionsDiamond(t *testing.T) {
	c := diamond()
	r := ReachingDefinitions(c)
	if len(r.Defs) != 3 {
		t.Fatalf("defs = %d, want 3", len(r.Defs))
	}
	// Both writes of x reach the join; each arm sees only its own.
	if got := len(r.DefsOf(3, "x")); got != 2 {
		t.Errorf("defs of x at join = %d, want 2", got)
	}
	if got := len(r.DefsOf(1, "x")); got != 1 {
		t.Errorf("defs of x at loc 1 = %d, want 1", got)
	}
	if got := len(r.DefsOf(0, "x")); got != 0 {
		t.Errorf("defs of x at entry = %d, want 0", got)
	}
	if got := len(r.DefsOf(3, "y")); got != 1 {
		t.Errorf("defs of y at join = %d, want 1 (the y:=x edge ends there)", got)
	}
	if got := len(r.DefsOf(2, "y")); got != 0 {
		t.Errorf("defs of y at loc 2 = %d, want 0 (the write happens on the way out)", got)
	}
}

func TestLiveVariablesDiamond(t *testing.T) {
	c := diamond()
	r := LiveVariables(c)
	// x is read on the 2->3 edge, so it is live at 2; it is also live at
	// 0 and 1 because the global is observable at the exit.
	if !r.LiveAt(2, "x") {
		t.Error("x not live at 2 despite the y:=x read")
	}
	if !r.LiveAt(3, "x") {
		t.Error("global x not live at the exit")
	}
	// y is never read: dead everywhere.
	for l := cfa.Loc(0); l < 4; l++ {
		if r.LiveAt(l, "y") {
			t.Errorf("y live at %d, but it is never read", l)
		}
	}
}

func TestConstantPropagation(t *testing.T) {
	c := diamond()
	r := ConstantPropagation(c)
	if v, ok := r.ConstAt(1, "x"); !ok || v != 1 {
		t.Errorf("x at loc 1 = (%d,%v), want constant 1", v, ok)
	}
	if v, ok := r.ConstAt(2, "x"); !ok || v != 2 {
		t.Errorf("x at loc 2 = (%d,%v), want constant 2", v, ok)
	}
	// The join merges 1 and 2: not a constant.
	if _, ok := r.ConstAt(3, "x"); ok {
		t.Error("x constant at the join of x:=1 and x:=2")
	}
	if _, ok := r.ConstAt(0, "x"); ok {
		t.Error("x constant at the entry (initial values are unconstrained)")
	}
	if !r.Reached(3) {
		t.Error("join not reached")
	}
}

func TestConstantPropagationAssumeRefinement(t *testing.T) {
	// 0 --[x==5]--> 1 --y:=x--> 2: the guard pins x, the copy forwards it.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssume, Pred: expr.Eq(expr.V("x"), expr.Num(5))}},
		{Src: 1, Dst: 2, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "y", RHS: expr.V("x")}},
	}
	c := cfa.New("refine", []string{"x"}, []string{"y"}, 0, make([]bool, 3), edges)
	r := ConstantPropagation(c)
	if v, ok := r.ConstAt(1, "x"); !ok || v != 5 {
		t.Errorf("x after [x==5] = (%d,%v), want constant 5", v, ok)
	}
	if v, ok := r.ConstAt(2, "y"); !ok || v != 5 {
		t.Errorf("y after y:=x = (%d,%v), want constant 5", v, ok)
	}
}

func TestConstantPropagationUnreachable(t *testing.T) {
	// A false guard cuts the only path: the successor is unreached.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssume, Pred: expr.FalseExpr}},
	}
	c := cfa.New("dead", nil, nil, 0, make([]bool, 2), edges)
	r := ConstantPropagation(c)
	if r.Reached(1) {
		t.Error("location behind [false] reported reachable")
	}
}

func TestConstantPropagationCopyInvalidation(t *testing.T) {
	// y:=x; x:=7 — the copy must not survive the redefinition of x.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssume, Pred: expr.Eq(expr.V("x"), expr.Num(3))}},
		{Src: 1, Dst: 2, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "y", RHS: expr.V("x")}},
		{Src: 2, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "x", RHS: expr.Num(7)}},
	}
	c := cfa.New("copy", []string{"x"}, []string{"y"}, 0, make([]bool, 4), edges)
	r := ConstantPropagation(c)
	if v, ok := r.ConstAt(3, "y"); !ok || v != 3 {
		t.Errorf("y at exit = (%d,%v), want constant 3 (copied before x changed)", v, ok)
	}
	if v, ok := r.ConstAt(3, "x"); !ok || v != 7 {
		t.Errorf("x at exit = (%d,%v), want constant 7", v, ok)
	}
}

// mustBuild parses MiniNesC source and builds the named thread's CFA.
func mustBuild(t *testing.T, src, thread string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, thread)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const triageSrc = `
global int unused;
global int ro;
global int covered;
global int open;

thread T {
  local int tmp;
  while (1) {
    tmp = ro;
    atomic { covered = covered + 1; }
    open = open + 1;
  }
}
`

func TestTriageClassification(t *testing.T) {
	c := mustBuild(t, triageSrc, "")
	cases := []struct {
		global string
		reason string
		ok     bool
	}{
		{"unused", ReasonThreadLocal, true},
		{"ro", ReasonReadOnly, true},
		{"covered", ReasonAtomicCovered, true},
		{"open", "", false},
	}
	for _, tc := range cases {
		d, ok := Triage(c, tc.global)
		if ok != tc.ok || d.Reason != tc.reason {
			t.Errorf("Triage(%s) = (%q, %v), want (%q, %v)", tc.global, d.Reason, ok, tc.reason, tc.ok)
		}
	}
}

func TestTriageIgnoresUnreachableAccesses(t *testing.T) {
	// The write to g sits behind [false]: statically unreachable, so g is
	// effectively read-only... in fact thread-local.
	edges := []*cfa.Edge{
		{Src: 0, Dst: 1, Op: cfa.Op{Kind: cfa.OpAssume, Pred: expr.TrueExpr}},
		{Src: 2, Dst: 3, Op: cfa.Op{Kind: cfa.OpAssign, LHS: "g", RHS: expr.Num(1)}},
	}
	c := cfa.New("dead-write", []string{"g"}, nil, 0, make([]bool, 4), edges)
	d, ok := Triage(c, "g")
	if !ok || d.Reason != ReasonThreadLocal {
		t.Fatalf("Triage = (%q, %v), want thread-local (the write is unreachable)", d.Reason, ok)
	}
}

func TestCounterKey(t *testing.T) {
	if got := CounterKey(ReasonAtomicCovered); got != "atomic_covered" {
		t.Fatalf("CounterKey = %q", got)
	}
}
