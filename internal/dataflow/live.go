package dataflow

import "circ/internal/cfa"

// LiveResult is the live-variables solution for one CFA.
type LiveResult struct {
	// Vars enumerates the CFA's variables (globals then locals); bit i of
	// a fact corresponds to Vars[i].
	Vars []string
	// At[l] is the set of variables live at location l: v is live when
	// some path from l reads v before writing it (globals are also live
	// at every exit location — they are observable by other threads).
	At []BitSet

	idx map[string]int
}

// liveProblem instantiates the framework backwards: an edge's uses are
// generated, its write is killed.
type liveProblem struct {
	vars *varIndex
	exit BitSet
}

func (p *liveProblem) Direction() Direction { return Backward }
func (p *liveProblem) Bottom() BitSet       { return NewBitSet(len(p.vars.names)) }
func (p *liveProblem) Boundary() BitSet     { return p.exit.Copy() }

func (p *liveProblem) Join(dst, src BitSet) (BitSet, bool) {
	return dst, dst.UnionInto(src)
}

func (p *liveProblem) Transfer(e *cfa.Edge, out BitSet) BitSet {
	in := out.Copy()
	if x := e.Writes(); x != "" {
		if i, ok := p.vars.idx[x]; ok {
			in.Clear(i)
		}
	}
	for v := range e.Reads() {
		if i, ok := p.vars.idx[v]; ok {
			in.Set(i)
		}
	}
	return in
}

// LiveVariables computes per-location liveness. Globals are treated as
// live at every exit location: the race checker's semantics make every
// global observable by the environment, so a write to one is never dead.
func LiveVariables(c *cfa.CFA) *LiveResult {
	vars := indexVars(c)
	exit := NewBitSet(len(vars.names))
	for _, g := range c.Globals {
		exit.Set(vars.idx[g])
	}
	p := &liveProblem{vars: vars, exit: exit}
	return &LiveResult{Vars: vars.names, At: Solve[BitSet](c, p), idx: vars.idx}
}

// LiveAt reports whether v is live at l: read on some path from l
// before being written.
func (r *LiveResult) LiveAt(l cfa.Loc, v string) bool {
	i, ok := r.idx[v]
	return ok && r.At[l].Has(i)
}
