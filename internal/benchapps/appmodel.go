package benchapps

// AppModel is a larger, whole-application-style model in the shape the
// paper describes for its nesC benchmarks: every thread runs a dispatch
// loop that nondeterministically fires an interrupt handler (while
// enabled), runs a posted task, or executes the application's main work —
// with several shared variables, each guarded by a different idiom:
//
//   - txBuf: guarded by the test-and-set state variable radioBusy,
//   - rxBuf: split-phase — the receive interrupt disables itself, writes,
//     and posts a task which writes and re-enables,
//   - stats: only ever accessed inside atomic sections,
//   - seqNo: guarded by ownership of the radio (same owner discipline as
//     txBuf, exercising two variables under one guard).
//
// All four are race-free; CheckAppModel in the tests verifies each.
const AppModel = `
global int txBuf;
global int rxBuf;
global int stats;
global int seqNo;
global int radioBusy;
global int rxIntDisabled;
global int rxTaskPosted;
global int taskRunning;

thread App {
  local int mine;
  while (1) {
    choose {
      // Send path: claim the radio, fill the transmit buffer, bump the
      // sequence number, release.
      atomic {
        mine = 0;
        if (radioBusy == 0) { radioBusy = 1; mine = 1; }
      }
      if (mine == 1) {
        txBuf = txBuf + 1;
        seqNo = seqNo + 1;
        atomic { stats = stats + 1; }
        radioBusy = 0;
      }
    } or {
      // Receive interrupt: fires only while enabled; disables itself,
      // writes the receive buffer, posts the processing task.
      atomic {
        mine = 0;
        if (rxIntDisabled == 0) { rxIntDisabled = 1; mine = 1; }
      }
      if (mine == 1) {
        rxBuf = rxBuf + 1;
        atomic { rxTaskPosted = 1; }
      }
    } or {
      // Receive task: tasks never preempt tasks; consumes the buffer and
      // re-enables the interrupt.
      atomic {
        mine = 0;
        if (rxTaskPosted == 1) {
          if (taskRunning == 0) { taskRunning = 1; mine = 1; }
        }
      }
      if (mine == 1) {
        rxBuf = 0;
        atomic { rxTaskPosted = 0; taskRunning = 0; rxIntDisabled = 0; }
      }
    } or {
      // Bookkeeping: purely atomic accesses.
      atomic { stats = stats + 2; }
    }
  }
}
`

// AppModelVars lists the protected variables of AppModel, whether each is
// race-free, and whether verifying it exceeds the default state budget
// (the counter-configuration space over the ~34-location context model is
// the same scalability wall behind the paper's 20-minute rows).
func AppModelVars() []struct {
	Name  string
	Safe  bool
	Heavy bool
} {
	return []struct {
		Name  string
		Safe  bool
		Heavy bool
	}{
		{"txBuf", true, false},
		{"seqNo", true, false},
		{"rxBuf", true, true},
		{"stats", true, true},
	}
}
