//go:build !race

package benchapps

const raceDetectorEnabled = false
