package benchapps

import (
	"context"
	"os"
	"testing"

	"circ/internal/circ"
	"circ/internal/smt"
)

// TestTable1Verdicts runs CIRC on every Table 1 model and checks the
// paper's verdict (all safe). This is the core correctness validation of
// the evaluation suite.
func TestTable1Verdicts(t *testing.T) {
	for _, app := range Table1() {
		app := app
		t.Run(app.Key(), func(t *testing.T) {
			_, c, err := app.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := circ.Check(context.Background(), c, app.Variable, circ.Options{}, smt.NewChecker())
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			want := circ.Safe
			if !app.ExpectSafe {
				want = circ.Unsafe
			}
			if rep.Verdict != want {
				t.Fatalf("verdict = %v (reason %q, preds %v), want %v", rep.Verdict, rep.Reason, rep.Preds, want)
			}
		})
	}
}

// TestSection6RacesFound runs CIRC on the buggy variants and checks that
// the genuine races are reported with concrete interleavings.
func TestSection6RacesFound(t *testing.T) {
	for _, app := range Section6Races() {
		app := app
		t.Run(app.Key(), func(t *testing.T) {
			_, c, err := app.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := circ.Check(context.Background(), c, app.Variable, circ.Options{}, smt.NewChecker())
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if rep.Verdict != circ.Unsafe {
				t.Fatalf("verdict = %v (reason %q), want unsafe", rep.Verdict, rep.Reason)
			}
			if rep.Race == nil || len(rep.Race.Steps) == 0 {
				t.Fatalf("missing race trace")
			}
		})
	}
}

func TestAllModelsParse(t *testing.T) {
	for _, group := range [][]App{Table1(), Section6Races(), FalsePositiveSuite()} {
		for _, app := range group {
			if _, _, err := app.Build(); err != nil {
				t.Errorf("%s: %v", app.Key(), err)
			}
		}
	}
}

func TestGet(t *testing.T) {
	if Get("surge", "rec_ptr") == nil {
		t.Fatalf("Get(surge, rec_ptr) = nil")
	}
	if Get("nope", "x") != nil {
		t.Fatalf("Get(nope, x) should be nil")
	}
}

// TestAppModel verifies the whole-application model: every protected
// variable of the multi-idiom dispatcher proves race-free.
func TestAppModel(t *testing.T) {
	if testing.Short() {
		t.Skip("app model is slow")
	}
	if raceDetectorEnabled {
		t.Skip("app model exceeds the test timeout under the race detector")
	}
	app := App{Name: "appmodel", Variable: "", Source: AppModel}
	_, c, err := app.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	heavy := os.Getenv("CIRC_FULL_APPMODEL") != ""
	for _, v := range AppModelVars() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			if v.Heavy && !heavy {
				t.Skip("beyond the default state budget (same scalability envelope as the paper's 20-minute rows); set CIRC_FULL_APPMODEL=1 to run")
			}
			rep, err := circ.Check(context.Background(), c, v.Name, circ.Options{MaxStates: 20000000}, smt.NewChecker())
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			want := circ.Safe
			if !v.Safe {
				want = circ.Unsafe
			}
			if rep.Verdict != want {
				t.Fatalf("verdict on %s = %v (%s), want %v", v.Name, rep.Verdict, rep.Reason, want)
			}
		})
	}
}
