// Package benchapps contains the MiniNesC models of the paper's evaluation
// programs (Table 1 and the Section 6 narrative). The original nesC
// applications — secureTosBase, surge, sense — are proprietary to the
// TinyOS distribution the authors used and compile to thousands of lines
// of C; what the checker actually exercises is the synchronisation idiom
// guarding each protected variable. Each model reproduces one such idiom
// faithfully, following the paper's own modelling recipe: an arbitrary
// number of threads, each running a dispatch loop that fires interrupt
// handlers nondeterministically (when enabled) and runs posted tasks
// (tasks never preempt tasks).
package benchapps

import (
	"fmt"

	"circ/internal/cfa"
	"circ/internal/lang"
)

// App is one evaluation row: a MiniNesC model of a protected variable.
type App struct {
	// Name is the nesC application the row comes from.
	Name string
	// Variable is the protected variable checked for races.
	Variable string
	// Source is the MiniNesC model.
	Source string
	// ExpectSafe is the ground truth (and the paper's verdict).
	ExpectSafe bool
	// Paper-reported measurements for EXPERIMENTS.md comparisons.
	PaperPreds int
	PaperACFA  int
	PaperTime  string
	// Idiom describes the synchronisation pattern.
	Idiom string
}

// Key returns "app/variable".
func (a App) Key() string { return a.Name + "/" + a.Variable }

// Build parses the model and constructs its thread CFA.
func (a App) Build() (*lang.Program, *cfa.CFA, error) {
	p, err := lang.Parse(a.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("benchapps %s: %v", a.Key(), err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		return nil, nil, fmt.Errorf("benchapps %s: %v", a.Key(), err)
	}
	return p, c, nil
}

// testAndSet is the binary state-variable idiom of Figure 1, guarding a
// counter-like variable. It protects gTxByteCnt and gTxRunningCRC in both
// secureTosBase and surge.
func testAndSet(varName, stateName string, extraStep bool) string {
	extra := ""
	if extraStep {
		extra = fmt.Sprintf("      %s = %s + 1;\n", varName, varName)
	}
	return fmt.Sprintf(`
global int %[1]s;
global int %[2]s;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = %[2]s;
      if (%[2]s == 0) { %[2]s = 1; }
    }
    if (old == 0) {
      %[1]s = %[1]s + 1;
%[3]s      %[2]s = 0;
    }
  }
}
`, varName, stateName, extra)
}

// atomicOnly accesses the variable exclusively inside atomic sections: the
// trivially-safe rows that need no predicates (gTxProto, gRxTailIndex).
func atomicOnly(varName string, double bool) string {
	body := fmt.Sprintf("      %[1]s = %[1]s + 1;\n", varName)
	if double {
		body += fmt.Sprintf("      if (%[1]s > 3) { %[1]s = 0; }\n", varName)
	}
	return fmt.Sprintf(`
global int %[1]s;

thread Worker {
  while (1) {
    atomic {
%[2]s    }
  }
}
`, varName, body)
}

// multiStateMachine guards the state variable itself: the winner of an
// atomic test-and-set drives the variable through a multi-valued protocol
// outside atomic sections. This is the gTxState idiom ("accessed in a more
// complicated pattern"). If buggy, one access happens after the state was
// released — the genuine race CIRC found in secureTosBase, fixed by moving
// the access before the release.
func multiStateMachine(stateName string, buggy bool) string {
	drive := fmt.Sprintf(`      %[1]s = 2;
      %[1]s = 3;
      atomic { %[1]s = 0; }`, stateName)
	if buggy {
		drive = fmt.Sprintf(`      %[1]s = 2;
      atomic { %[1]s = 0; }
      %[1]s = 3;`, stateName)
	}
	return fmt.Sprintf(`
global int %[1]s;

thread Tx {
  local int st;
  while (1) {
    atomic {
      st = %[1]s;
      if (%[1]s == 0) { %[1]s = 1; }
    }
    if (st == 0) {
%[2]s
    } else {
      if (st == 2) { skip; }
    }
  }
}
`, stateName, drive)
}

// headIndex is the gRxHeadIndex idiom: synchronisation on multiple values
// of a state variable with conditional accesses — ownership is claimed at
// state 0, retained through states 1 and 2, and the protected index is
// accessed (conditionally) in both phases.
func headIndex(varName, stateName string) string {
	return fmt.Sprintf(`
global int %[1]s;
global int %[2]s;

thread Rx {
  local int s;
  while (1) {
    atomic {
      s = %[2]s;
      if (%[2]s == 0) { %[2]s = 1; }
    }
    if (s == 0) {
      %[1]s = %[1]s + 1;
      atomic { %[2]s = 2; }
      if (%[1]s > 3) { %[1]s = 0; }
      atomic { %[2]s = 0; }
    } else {
      if (s == 2) { skip; }
    }
  }
}
`, varName, stateName)
}

// splitPhase is the surge rec_ptr idiom: an interrupt handler fires only
// while interrupts are enabled, disables them, writes, and posts a task;
// the task (tasks never preempt tasks) writes and re-enables the
// interrupt. Mutual exclusion is carried by the interrupt status bit, per
// the paper's hardware-model remark.
func splitPhase(varName string) string {
	return fmt.Sprintf(`
global int %[1]s;
global int intDisabled;
global int taskPosted;
global int taskRunning;

thread Dev {
  local int mine;
  while (1) {
    choose {
      // Interrupt handler: fires only while enabled; disables itself.
      atomic {
        mine = 0;
        if (intDisabled == 0) { intDisabled = 1; mine = 1; }
      }
      if (mine == 1) {
        %[1]s = %[1]s + 1;
        atomic { taskPosted = 1; }
      }
    } or {
      // Task: runs when posted; tasks never preempt tasks.
      atomic {
        mine = 0;
        if (taskPosted == 1) {
          if (taskRunning == 0) { taskRunning = 1; mine = 1; }
        }
      }
      if (mine == 1) {
        %[1]s = %[1]s + 2;
        atomic { taskPosted = 0; taskRunning = 0; intDisabled = 0; }
      }
    }
  }
}
`, varName)
}

// sensePort is the sense tosPort idiom: a state variable combined with an
// interrupt that resets the state. In the buggy model the resetting
// interrupt can fire at any time — the race CIRC reported; the fixed model
// tracks the interrupt-enable bit that the hardware only sets after the
// owner finished writing (the paper: "the malicious middle interrupt was
// only enabled after the first thread had finished writing").
func sensePort(varName string, modelled bool) string {
	if !modelled {
		// Buggy: the resetting interrupt can fire at any moment, stealing
		// the state from a writer mid-access.
		return fmt.Sprintf(`
global int %[1]s;
global int sState;

thread Sense {
  local int mine;
  while (1) {
    choose {
      atomic {
        mine = 0;
        if (sState == 0) { sState = 1; mine = 1; }
      }
      if (mine == 1) {
        %[1]s = %[1]s + 1;
        atomic { sState = 0; }
      }
    } or {
      // ADC-completion interrupt resets the sampling state machine.
      atomic { if (sState == 1) { sState = 0; } }
    }
  }
}
`, varName)
	}
	// Modelled: the completion interrupt is only enabled once the owner
	// has finished writing; the interrupt (not the owner) advances the
	// state machine back to idle. While an owner writes, sState = 1 and
	// intEnabled = 0, so neither a second claimant nor the interrupt can
	// run.
	return fmt.Sprintf(`
global int %[1]s;
global int sState;
global int intEnabled;

thread Sense {
  local int mine;
  while (1) {
    choose {
      atomic {
        mine = 0;
        if (sState == 0) { sState = 1; mine = 1; }
      }
      if (mine == 1) {
        %[1]s = %[1]s + 1;
        atomic { intEnabled = 1; }
      }
    } or {
      // ADC-completion interrupt: fires only once enabled, resets the
      // state machine and disables itself.
      atomic {
        if (intEnabled == 1) { sState = 0; intEnabled = 0; }
      }
    }
  }
}
`, varName)
}

// Table1 returns the models for every row of the paper's Table 1.
func Table1() []App {
	return []App{
		{
			Name: "secureTosBase", Variable: "gTxState",
			Source:     multiStateMachine("gTxState", false),
			ExpectSafe: true,
			PaperPreds: 11, PaperACFA: 23, PaperTime: "7m38s",
			Idiom: "multi-valued state machine guarding itself (fixed per Section 6)",
		},
		{
			Name: "secureTosBase", Variable: "gTxByteCnt",
			Source:     testAndSet("gTxByteCnt", "txState", false),
			ExpectSafe: true,
			PaperPreds: 4, PaperACFA: 13, PaperTime: "1m41s",
			Idiom: "binary test-and-set state variable",
		},
		{
			Name: "secureTosBase", Variable: "gTxRunningCRC",
			Source:     testAndSet("gTxRunningCRC", "txState", false),
			ExpectSafe: true,
			PaperPreds: 4, PaperACFA: 13, PaperTime: "1m50s",
			Idiom: "binary test-and-set state variable",
		},
		{
			Name: "secureTosBase", Variable: "gTxProto",
			Source:     atomicOnly("gTxProto", true),
			ExpectSafe: true,
			PaperPreds: 0, PaperACFA: 9, PaperTime: "12s",
			Idiom: "all accesses inside atomic sections",
		},
		{
			Name: "secureTosBase", Variable: "gRxHeadIndex",
			Source:     headIndex("gRxHeadIndex", "rxState"),
			ExpectSafe: true,
			PaperPreds: 8, PaperACFA: 64, PaperTime: "20m50s",
			Idiom: "multi-valued state variable with conditional accesses",
		},
		{
			Name: "secureTosBase", Variable: "gRxTailIndex",
			Source:     atomicOnly("gRxTailIndex", false),
			ExpectSafe: true,
			PaperPreds: 0, PaperACFA: 5, PaperTime: "2s",
			Idiom: "all accesses inside atomic sections",
		},
		{
			Name: "surge", Variable: "rec_ptr",
			Source:     splitPhase("rec_ptr"),
			ExpectSafe: true,
			PaperPreds: 4, PaperACFA: 23, PaperTime: "1m18s",
			Idiom: "split-phase interrupt disable/enable",
		},
		{
			Name: "surge", Variable: "gTxByteCnt",
			Source:     testAndSet("gTxByteCnt", "txState", true),
			ExpectSafe: true,
			PaperPreds: 4, PaperACFA: 15, PaperTime: "1m34s",
			Idiom: "binary test-and-set state variable",
		},
		{
			Name: "surge", Variable: "gTxRunningCRC",
			Source:     testAndSet("gTxRunningCRC", "txState", true),
			ExpectSafe: true,
			PaperPreds: 4, PaperACFA: 15, PaperTime: "1m45s",
			Idiom: "binary test-and-set state variable",
		},
		{
			Name: "surge", Variable: "gTxState",
			Source:     multiStateMachine("gTxState", false),
			ExpectSafe: true,
			PaperPreds: 11, PaperACFA: 35, PaperTime: "9m54s",
			Idiom: "multi-valued state machine guarding itself",
		},
		{
			Name: "sense", Variable: "tosPort",
			Source:     sensePort("tosPort", true),
			ExpectSafe: true,
			PaperPreds: 6, PaperACFA: 26, PaperTime: "16m25s",
			Idiom: "state variable combined with a modelled interrupt bit",
		},
	}
}

// Section6Races returns the buggy variants whose genuine races the paper
// reports finding (each paired with the fixed Table 1 row).
func Section6Races() []App {
	return []App{
		{
			Name: "secureTosBase", Variable: "gTxState",
			Source:     multiStateMachine("gTxState", true),
			ExpectSafe: false,
			Idiom:      "access after releasing the state variable (fixed by moving it before the call)",
		},
		{
			Name: "sense", Variable: "tosPort",
			Source:     sensePort("tosPort", false),
			ExpectSafe: false,
			Idiom:      "interrupt resets the state while an owner is writing (fixed by modelling the interrupt bit)",
		},
	}
}

// conditionalLocking is the Section 1 "conditional locking" idiom: the
// protected access happens only when a function that toggles the state
// variable returns a particular value — the toggle and the access live in
// different procedures, defeating syntactic lock analyses.
func conditionalLocking(varName string) string {
	return fmt.Sprintf(`
global int %[1]s;
global int state;

int tryLock() {
  local int got;
  got = 0;
  atomic {
    if (state == 0) { state = 1; got = 1; }
  }
  return got;
}

void unlock() { atomic { state = 0; } }

thread Worker {
  while (1) {
    if (tryLock() == 1) {
      %[1]s = %[1]s + 1;
      unlock();
    }
  }
}
`, varName)
}

// FalsePositiveSuite returns the idioms that lockset- and flow-based
// baselines flag although they are race-free (the paper's Section 1
// motivation), plus one genuinely racy program all tools should catch.
func FalsePositiveSuite() []App {
	apps := []App{
		{
			Name: "idioms", Variable: "x",
			Source:     testAndSet("x", "state", false),
			ExpectSafe: true,
			Idiom:      "Figure 1 test-and-set",
		},
		{
			Name: "idioms", Variable: "x",
			Source:     conditionalLocking("x"),
			ExpectSafe: true,
			Idiom:      "conditional locking via function return",
		},
		{
			Name: "idioms", Variable: "rec_ptr",
			Source:     splitPhase("rec_ptr"),
			ExpectSafe: true,
			Idiom:      "split-phase interrupt",
		},
		{
			Name: "idioms", Variable: "x",
			Source: `
global int x;

thread Worker {
  while (1) {
    x = x + 1;
  }
}
`,
			ExpectSafe: false,
			Idiom:      "unprotected counter (genuine race)",
		},
	}
	return apps
}

// Get returns the Table 1 row for app/variable, or nil.
func Get(name, variable string) *App {
	for _, a := range Table1() {
		if a.Name == name && a.Variable == variable {
			return &a
		}
	}
	return nil
}
