package benchapps

import (
	"context"
	"fmt"
	"os"
	"testing"

	"circ/internal/circ"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

func TestDebugGTxState(t *testing.T) {
	app := Get("secureTosBase", "gTxState")
	_, c, err := app.Build()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(c)
	rep, err := circ.Check(context.Background(), c, "gTxState",
		circ.Options{Logger: telemetry.NarrationLogger(os.Stdout)}, smt.NewChecker())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("verdict:", rep.Verdict)
	if rep.Race != nil {
		fmt.Println("race trace:\n", rep.Race)
	}
}
