//go:build race

package benchapps

// raceDetectorEnabled reports whether this binary was built with -race;
// the whole-application sweep is skipped under the detector's ~10-20x
// slowdown (it would exceed go test's default timeout).
const raceDetectorEnabled = true
