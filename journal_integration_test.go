package circ

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"circ/internal/journal"
)

// checkWithJournal runs one analysis of tasSrc with an attached flight
// recorder at the given parallelism and returns the report plus the
// serialized journal.
func checkWithJournal(t *testing.T, parallel int, opts ...Option) (*Report, []byte, *Journal) {
	t.Helper()
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal()
	chk := NewChecker(append([]Option{WithJournal(j), WithParallelism(parallel)}, opts...)...)
	rep, err := chk.Check(context.Background(), p, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes(), j
}

// TestJournalDeterministic is the headline determinism guarantee: the
// serialized journal is byte-identical at every parallelism, under both
// the work-stealing and the level-synchronous scheduler.
func TestJournalDeterministic(t *testing.T) {
	_, base, _ := checkWithJournal(t, 1)
	if _, err := journal.Validate(bytes.NewReader(base)); err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Sched{SchedSteal, SchedLevel} {
		for _, parallel := range []int{1, 2, 4, 8} {
			_, got, _ := checkWithJournal(t, parallel, WithScheduler(sched))
			if !bytes.Equal(base, got) {
				t.Fatalf("journal differs: sched=%v parallel=%d vs sequential baseline:\n--- baseline ---\n%s--- sched=%v parallel=%d ---\n%s",
					sched, parallel, base, sched, parallel, got)
			}
		}
	}
}

// TestJournalAccountsForPredicates checks the provenance contract: every
// predicate in the final report appears as a predicate_discovered event,
// and mined predicates carry the spurious trace they came from.
func TestJournalAccountsForPredicates(t *testing.T) {
	// Triage off so inference actually runs on the fixture (the flag-guard
	// rule discharges it statically by default).
	rep, _, j := checkWithJournal(t, 1, WithTriage(false))
	if rep.Verdict != Safe || len(rep.Preds) == 0 {
		t.Fatalf("fixture no longer mines predicates: verdict=%v preds=%d", rep.Verdict, len(rep.Preds))
	}
	discovered := map[string]JournalEvent{}
	sawVerdict := false
	for _, e := range j.Events() {
		switch e.Type {
		case journal.EvPredicateDiscovered:
			discovered[e.Pred] = e
		case journal.EvVerdict:
			sawVerdict = true
			if e.Verdict != "safe" || e.NumPreds != len(rep.Preds) {
				t.Errorf("verdict event = %+v, want safe with %d preds", e, len(rep.Preds))
			}
		}
	}
	if !sawVerdict {
		t.Error("no verdict event emitted")
	}
	for _, p := range rep.Preds {
		e, ok := discovered[p.String()]
		if !ok {
			t.Errorf("predicate %s has no predicate_discovered event", p)
			continue
		}
		if e.Outcome == "mined" && e.Trace == "" {
			t.Errorf("mined predicate %s has no source trace", p)
		}
		if e.Outcome == "mined" && len(e.Core) == 0 {
			t.Errorf("mined predicate %s has no unsat-core atoms", p)
		}
	}
}

// TestJournalBatch covers the CheckAll lifecycle events and the
// shared-solver suppression rule: multi-target batches must not emit
// smt_phase_stats (per-phase solver deltas are unattributable there), so
// batch journals stay independent of the worker count.
func TestJournalBatch(t *testing.T) {
	run := func(parallel int) []byte {
		p, err := Parse(tasSrc)
		if err != nil {
			t.Fatal(err)
		}
		j := NewJournal()
		chk := NewChecker(WithJournal(j), WithParallelism(parallel))
		b, err := chk.CheckAll(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Results) != 2 {
			t.Fatalf("len(Results) = %d, want 2 (x and state)", len(b.Results))
		}
		perCase := map[string]map[string]int{}
		for _, e := range j.Events() {
			if e.Type == journal.EvSMTPhaseStats {
				t.Errorf("multi-target batch emitted smt_phase_stats: %+v", e)
			}
			if perCase[e.Case] == nil {
				perCase[e.Case] = map[string]int{}
			}
			perCase[e.Case][e.Type]++
		}
		for _, r := range b.Results {
			name := r.Thread + "/" + r.Variable
			got := perCase[name]
			if got[journal.EvCaseQueued] != 1 || got[journal.EvCaseStarted] != 1 || got[journal.EvCaseDone] != 1 {
				t.Errorf("%s lifecycle events = %v, want one each of queued/started/done", name, got)
			}
		}
		var buf bytes.Buffer
		if err := j.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := journal.Validate(bytes.NewReader(buf.Bytes())); err != nil {
			t.Error(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	par := run(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("batch journal differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", seq, par)
	}
}

// TestJournalCaseNaming pins the engine's case-name convention so CLI
// report sections keep lining up with journal events.
func TestJournalCaseNaming(t *testing.T) {
	_, _, j := checkWithJournal(t, 1)
	for _, e := range j.Events() {
		if e.Case != "x" {
			t.Fatalf("single-variable check used case %q, want %q", e.Case, "x")
		}
	}
	if got := journalCase("Worker", "x"); got != "Worker/x" {
		t.Fatalf("journalCase(Worker, x) = %q", got)
	}
	if !strings.Contains(string(mustJSONL(t, j)), `"case":"x"`) {
		t.Fatal("serialized journal missing case attribution")
	}
}

func mustJSONL(t *testing.T, j *Journal) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
