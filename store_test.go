package circ

import (
	"context"
	"encoding/json"
	"testing"

	"circ/internal/journal"
)

// collectVerdicts extracts per-case verdict events with sequence numbers
// normalized away — the verdict content is what must match between a cold
// and a warm run, not its position in the case history.
func collectVerdicts(t *testing.T, j *Journal) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, e := range j.Events() {
		if e.Type != journal.EvVerdict {
			continue
		}
		e.Seq = 0
		c := e.Case
		e.Case = ""
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal verdict event: %v", err)
		}
		out[c] = string(data)
	}
	return out
}

func countEvents(j *Journal, typ string) int {
	n := 0
	for _, e := range j.Events() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// TestCertStoreColdWarm: a second submission of an unchanged program
// through a shared certificate store performs zero CIRC iterations — every
// non-triaged verdict is re-established from stored evidence — and its
// verdict journal events are identical in content to the cold run's.
func TestCertStoreColdWarm(t *testing.T) {
	const src = `
global int x;
global int state;
global int y;

thread Worker {
  local int old;
  while (1) {
    y = y + 1;
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`
	st := NewCertStore()
	ctx := context.Background()

	cold := NewJournal()
	chkCold := NewChecker(WithCertStore(st), WithJournal(cold), WithParallelism(1))
	repCold, err := CheckAllRacesProgramless(t, ctx, chkCold, src)
	if err != nil {
		t.Fatalf("cold batch: %v", err)
	}
	if n := countEvents(cold, journal.EvCertificateReused); n != 0 {
		t.Fatalf("cold run reused %d certificates; want 0", n)
	}
	if st.Len() == 0 {
		t.Fatalf("cold run stored no entries")
	}
	coldIters := chkCold.Metrics().Snapshot().Counter("circ.iterations")
	if coldIters == 0 {
		t.Fatalf("cold run reported zero CIRC iterations")
	}

	// Warm: a fresh checker (fresh journal, fresh metrics) sharing only
	// the store — the daemon's per-request shape.
	warm := NewJournal()
	chkWarm := NewChecker(WithCertStore(st), WithJournal(warm), WithParallelism(1))
	repWarm, err := CheckAllRacesProgramless(t, ctx, chkWarm, src)
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}

	// Zero inference: no iteration ever started, every non-triaged case
	// came from the store.
	if n := chkWarm.Metrics().Snapshot().Counter("circ.iterations"); n != 0 {
		t.Fatalf("warm run performed %d CIRC iterations; want 0", n)
	}
	if n := countEvents(warm, journal.EvIterationStart); n != 0 {
		t.Fatalf("warm journal has %d iteration_start events; want 0", n)
	}
	nonTriaged := 0
	for i, r := range repCold.Results {
		if r.Err != nil {
			t.Fatalf("cold %s: %v", r.Target, r.Err)
		}
		if r.Report.Triage == "" {
			nonTriaged++
		}
		w := repWarm.Results[i]
		if w.Err != nil {
			t.Fatalf("warm %s: %v", w.Target, w.Err)
		}
		if r.Report.Verdict != w.Report.Verdict {
			t.Fatalf("%s: verdict drifted cold %v -> warm %v", r.Target, r.Report.Verdict, w.Report.Verdict)
		}
		if r.Report.K != w.Report.K || len(r.Report.Preds) != len(w.Report.Preds) || r.Report.Rounds != w.Report.Rounds {
			t.Fatalf("%s: evidence drifted: cold (k=%d,%d preds,%d rounds) warm (k=%d,%d preds,%d rounds)",
				r.Target, r.Report.K, len(r.Report.Preds), r.Report.Rounds,
				w.Report.K, len(w.Report.Preds), w.Report.Rounds)
		}
	}
	if nonTriaged == 0 {
		t.Fatalf("test program has no non-triaged targets; store path unexercised")
	}
	if n := countEvents(warm, journal.EvCertificateReused); n != nonTriaged {
		t.Fatalf("warm run reused %d certificates; want %d", n, nonTriaged)
	}

	// Verdict events byte-identical in content.
	cv, wv := collectVerdicts(t, cold), collectVerdicts(t, warm)
	if len(cv) != len(wv) {
		t.Fatalf("verdict case sets differ: cold %d, warm %d", len(cv), len(wv))
	}
	for c, e := range cv {
		if wv[c] != e {
			t.Fatalf("case %s: verdict event drifted:\ncold %s\nwarm %s", c, e, wv[c])
		}
	}

	stats := st.Stats()
	if stats.Hits != int64(nonTriaged) || stats.RevalidationFailures != 0 {
		t.Fatalf("store stats = %+v; want %d hits, 0 revalidation failures", stats, nonTriaged)
	}
}

// CheckAllRacesProgramless is a test helper running a pre-built checker
// over every (thread, global) pair of src.
func CheckAllRacesProgramless(t *testing.T, ctx context.Context, chk *Checker, src string) (*BatchReport, error) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return chk.CheckAll(ctx, p)
}

// TestCertStoreInvalidatedByChange: editing inside the cone of influence
// misses the store; editing outside it (after slicing) still hits.
func TestCertStoreInvalidatedByChange(t *testing.T) {
	base := `
global int x;
global int state;
global int noise;

thread Worker {
  local int old;
  while (1) {
    noise = noise + 1;
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`
	// Same cone of influence for x; only the irrelevant noise traffic
	// changes.
	outsideCone := `
global int x;
global int state;
global int noise;

thread Worker {
  local int old;
  while (1) {
    noise = noise + 7;
    noise = noise - 3;
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`
	// The write to x itself changes: the sliced cone differs.
	insideCone := `
global int x;
global int state;
global int noise;

thread Worker {
  local int old;
  while (1) {
    noise = noise + 1;
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 2;
      state = 0;
    }
  }
}
`
	ctx := context.Background()
	st := NewCertStore()
	check := func(src string) *Report {
		t.Helper()
		// Triage off: the flag-guard rule would discharge x statically and
		// the store (the subject here) would never be consulted.
		chk := NewChecker(WithCertStore(st), WithParallelism(1), WithTriage(false))
		rep, err := chk.Check(ctx, MustParse(t, src), "", "x")
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return rep
	}

	check(base)
	after := st.Stats()
	if after.Writes != 1 {
		t.Fatalf("cold run wrote %d entries; want 1", after.Writes)
	}

	check(outsideCone)
	s2 := st.Stats()
	if s2.Hits != after.Hits+1 {
		t.Fatalf("edit outside the cone missed the store: %+v -> %+v", after, s2)
	}

	check(insideCone)
	s3 := st.Stats()
	if s3.Misses != s2.Misses+1 || s3.Writes != s2.Writes+1 {
		t.Fatalf("edit inside the cone should miss and re-store: %+v -> %+v", s2, s3)
	}
}

// MustParse parses src or fails the test.
func MustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}
